package obs

import (
	"encoding/hex"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that carries a request's trace id across
// the JSON dialect, formatted as 16 lowercase hex digits. The router assigns
// one at ingress when the client did not send one, forwards it on the
// backend leg, and echoes it to the client; harvestd does the same for
// directly-addressed requests. On the binary dialect the frame header's
// echoed u64 request id is the trace id — no extra bytes on the wire.
const TraceHeader = "X-Harvest-Trace"

// Span is one timed hop inside a trace: ingress, circuit-breaker wait,
// backend leg, snapshot read, ledger reserve. Offsets are microseconds from
// the trace's start so a router span and a shard span for the same trace id
// line up on one timeline without cross-host clock agreement mattering much.
type Span struct {
	Name    string
	StartUs int64
	DurUs   int64
}

// Dialect labels for Trace.Dialect.
const (
	DialectJSON   = "json"
	DialectBinary = "binary"
)

// maxSpans bounds the per-trace span array. Traces are request-scoped and
// shallow (a handful of hops); a fixed array keeps Begin at one allocation.
const maxSpans = 8

// Trace is one request's record on one process. It is built by a single
// goroutine (the connection handler) and becomes immutable when Finish
// publishes it into the recorder's ring; readers only ever see published
// traces, so no field needs atomics.
type Trace struct {
	ID      uint64
	Dialect string
	Op      string
	DC      string
	JobID   string
	Owner   string
	Status  int
	Start   time.Time
	DurUs   int64
	nspans  int
	spans   [maxSpans]Span
	rec     *Recorder
}

// NewTraceID draws a random nonzero 64-bit trace id.
func NewTraceID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// FormatTraceID renders an id as the 16-hex-digit wire form.
func FormatTraceID(id uint64) string {
	var b [8]byte
	b[0] = byte(id >> 56)
	b[1] = byte(id >> 48)
	b[2] = byte(id >> 40)
	b[3] = byte(id >> 32)
	b[4] = byte(id >> 24)
	b[5] = byte(id >> 16)
	b[6] = byte(id >> 8)
	b[7] = byte(id)
	return hex.EncodeToString(b[:])
}

// ParseTraceID parses the wire form: up to 16 hex digits, optionally
// 0x-prefixed. Returns false for empty or malformed input or a zero id.
func ParseTraceID(s string) (uint64, bool) {
	if len(s) > 1 && (s[0:2] == "0x" || s[0:2] == "0X") {
		s = s[2:]
	}
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	var id uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var v uint64
		switch {
		case c >= '0' && c <= '9':
			v = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v = uint64(c-'A') + 10
		default:
			return 0, false
		}
		id = id<<4 | v
	}
	return id, id != 0
}

// Begin starts a trace. A zero id gets a fresh random one (ingress
// assignment); a nonzero id is propagated from upstream (header or binary
// frame id). Safe on a nil recorder: returns nil, and every Trace method is
// a no-op on a nil receiver, so untraced builds pay only a nil check.
func (r *Recorder) Begin(id uint64, dialect, op, dc string) *Trace {
	if r == nil {
		return nil
	}
	if id == 0 {
		id = NewTraceID()
	}
	return &Trace{ID: id, Dialect: dialect, Op: op, DC: dc, Start: time.Now(), rec: r}
}

// SetDC fills in the datacenter once routing has resolved it.
func (t *Trace) SetDC(dc string) {
	if t != nil {
		t.DC = dc
	}
}

// SetOp overrides the operation label.
func (t *Trace) SetOp(op string) {
	if t != nil {
		t.Op = op
	}
}

// SetMeta attaches the optional per-lease operator metadata.
func (t *Trace) SetMeta(jobID, owner string) {
	if t != nil {
		t.JobID = jobID
		t.Owner = owner
	}
}

// Span records one hop that started at start and ends now. Spans beyond the
// fixed capacity are dropped (traces are shallow by construction).
func (t *Trace) Span(name string, start time.Time) {
	if t == nil || t.nspans >= maxSpans {
		return
	}
	t.spans[t.nspans] = Span{
		Name:    name,
		StartUs: start.Sub(t.Start).Microseconds(),
		DurUs:   time.Since(start).Microseconds(),
	}
	t.nspans++
}

// Finish closes the trace with the response status (HTTP status code on both
// dialects — binary error frames carry the equivalent code) and publishes it
// into the recorder. The whole-request window is recorded as the "ingress"
// span implicitly via DurUs; callers add finer spans as they go.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.Status = status
	t.DurUs = time.Since(t.Start).Microseconds()
	t.rec.record(t)
}

// Spans returns the recorded spans. Only call on published (finished)
// traces, e.g. ones obtained from Query.
func (t *Trace) Spans() []Span { return t.spans[:t.nspans] }

// slowCap bounds the slowest-since-boot reservoir.
const slowCap = 32

// DefaultRingTraces is the per-process ring capacity daemons use unless
// configured otherwise.
const DefaultRingTraces = 1024

// Recorder keeps the last N finished traces in a lock-free ring plus the
// slowest-since-boot reservoir. Writers claim a slot with one atomic add and
// publish with one atomic pointer store; readers load pointers and never
// block writers. The reservoir takes a tiny mutex, but only when a trace
// beats the current slowest-32 admission threshold (atomic gate), so the
// steady-state hot path never touches it.
type Recorder struct {
	ring   []atomic.Pointer[Trace]
	cursor atomic.Uint64

	slowGate atomic.Int64 // admission bound: DurUs must exceed this
	slowMu   sync.Mutex
	slow     []*Trace
}

// NewRecorder creates a recorder holding the last n traces (minimum 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	r := &Recorder{ring: make([]atomic.Pointer[Trace], n), slow: make([]*Trace, 0, slowCap)}
	r.slowGate.Store(-1) // admit everything until the reservoir fills
	return r
}

func (r *Recorder) record(t *Trace) {
	i := r.cursor.Add(1) - 1
	r.ring[i%uint64(len(r.ring))].Store(t)
	if t.DurUs > r.slowGate.Load() {
		r.offerSlow(t)
	}
}

func (r *Recorder) offerSlow(t *Trace) {
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	if len(r.slow) < slowCap {
		r.slow = append(r.slow, t)
		if len(r.slow) == slowCap {
			r.slowGate.Store(r.slowMinLocked())
		}
		return
	}
	min := 0
	for i := range r.slow {
		if r.slow[i].DurUs < r.slow[min].DurUs {
			min = i
		}
	}
	if t.DurUs <= r.slow[min].DurUs {
		return // raced past the gate; a slower trace got there first
	}
	r.slow[min] = t
	r.slowGate.Store(r.slowMinLocked())
}

func (r *Recorder) slowMinLocked() int64 {
	min := r.slow[0].DurUs
	for _, s := range r.slow[1:] {
		if s.DurUs < min {
			min = s.DurUs
		}
	}
	return min
}

// TraceFilter selects traces out of a recorder. Zero values mean "any".
type TraceFilter struct {
	ID     uint64
	DC     string
	MinDur time.Duration
	Limit  int // max traces returned; 0 means 100
}

// Query returns matching traces, newest first, from both the ring and the
// slow reservoir (deduplicated). The result aliases published (immutable)
// traces and is safe to read without further synchronization.
func (r *Recorder) Query(f TraceFilter) []*Trace {
	if r == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 100
	}
	minUs := f.MinDur.Microseconds()
	seen := make(map[*Trace]struct{}, len(r.ring)+slowCap)
	var out []*Trace
	consider := func(t *Trace) {
		if t == nil {
			return
		}
		if _, dup := seen[t]; dup {
			return
		}
		seen[t] = struct{}{}
		if f.ID != 0 && t.ID != f.ID {
			return
		}
		if f.DC != "" && t.DC != f.DC {
			return
		}
		if t.DurUs < minUs {
			return
		}
		out = append(out, t)
	}
	for i := range r.ring {
		consider(r.ring[i].Load())
	}
	r.slowMu.Lock()
	slow := append([]*Trace(nil), r.slow...)
	r.slowMu.Unlock()
	for _, t := range slow {
		consider(t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
