package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.QuantileMicros(q); got != 0 {
			t.Fatalf("empty histogram QuantileMicros(%v) = %d, want 0", q, got)
		}
	}
	if h.MeanMicros() != 0 || h.MaxMicros() != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram has nonzero summary stats")
	}

	// A single sample lands every quantile in its bucket.
	h.Observe(100 * time.Microsecond) // bucket 7 (64..127µs)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.QuantileMicros(q); got != 128 {
			t.Fatalf("single-sample QuantileMicros(%v) = %d, want 128", q, got)
		}
	}
	if h.Count() != 1 || h.SumMicros() != 100 || h.MaxMicros() != 100 {
		t.Fatalf("single-sample stats: count=%d sum=%d max=%d", h.Count(), h.SumMicros(), h.MaxMicros())
	}

	// q=0 resolves to the lowest occupied bucket, q=1 to the highest.
	var h2 Histogram
	h2.Observe(1 * time.Microsecond)    // bucket 1
	h2.Observe(1000 * time.Microsecond) // bucket 10
	if got := h2.QuantileMicros(0); got != 2 {
		t.Fatalf("QuantileMicros(0) = %d, want 2", got)
	}
	if got := h2.QuantileMicros(1); got != 1024 {
		t.Fatalf("QuantileMicros(1) = %d, want 1024", got)
	}

	// Sub-microsecond samples occupy bucket 0, reported as ≤1µs.
	var h3 Histogram
	h3.Observe(500 * time.Nanosecond)
	if got := h3.QuantileMicros(0.5); got != 1 {
		t.Fatalf("sub-µs QuantileMicros = %d, want 1", got)
	}

	// Absurdly large samples clamp into the top bucket instead of indexing
	// out of range.
	var h4 Histogram
	h4.Observe(24 * time.Hour)
	if got := h4.QuantileMicros(1); got != 1<<(HistBuckets-1) {
		t.Fatalf("overflow QuantileMicros = %d, want %d", got, uint64(1)<<(HistBuckets-1))
	}
}

func TestBucketUpperMicros(t *testing.T) {
	cases := []struct {
		i    int
		want uint64
	}{{0, 0}, {1, 1}, {2, 3}, {5, 31}, {10, 1023}}
	for _, c := range cases {
		if got := BucketUpperMicros(c.i); got != c.want {
			t.Fatalf("BucketUpperMicros(%d) = %d, want %d", c.i, got, c.want)
		}
	}
	// The bounds must be strictly increasing — the Prometheus rendering and
	// the CI monotonicity check both lean on this.
	prev := BucketUpperMicros(0)
	for i := 1; i < HistBuckets; i++ {
		cur := BucketUpperMicros(i)
		if cur <= prev {
			t.Fatalf("BucketUpperMicros not monotone at %d: %d <= %d", i, cur, prev)
		}
		prev = cur
	}
}

func TestHistogramMergeAccumulates(t *testing.T) {
	var a, b Histogram
	a.Observe(10 * time.Microsecond)
	b.Observe(20 * time.Microsecond)
	b.Observe(5 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	if a.SumMicros() != 10+20+5000 {
		t.Fatalf("merged sum = %d, want 5030", a.SumMicros())
	}
	if a.MaxMicros() != 5000 {
		t.Fatalf("merged max = %d, want 5000", a.MaxMicros())
	}
}

// TestHistogramConcurrentObserveMerge exercises Observe, Merge, and the
// readers concurrently; it exists for the -race run.
func TestHistogramConcurrentObserveMerge(t *testing.T) {
	var src, dst Histogram
	var observers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		observers.Add(1)
		go func(g int) {
			defer observers.Done()
			for i := 0; i < 2000; i++ {
				src.Observe(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				dst.Merge(&src)
				_ = dst.QuantileMicros(0.99)
				_ = dst.MeanMicros()
			}
		}
	}()
	observers.Add(1)
	go func() {
		defer observers.Done()
		var m EndpointMetrics
		for i := 0; i < 2000; i++ {
			m.Observe(time.Duration(i)*time.Microsecond, 200+(i%2)*300)
		}
		if m.Requests.Load() != 2000 || m.Errors.Load() != 1000 {
			t.Errorf("EndpointMetrics: requests=%d errors=%d", m.Requests.Load(), m.Errors.Load())
		}
	}()
	observers.Wait()
	close(stop)
	readers.Wait()
	// One quiescent merge so the final tallies are exact.
	var final Histogram
	final.Merge(&src)
	if final.Count() != 8000 {
		t.Fatalf("final count = %d, want 8000", final.Count())
	}
}
