// Package obs is the fleet's zero-dependency observability plane: lock-free
// latency histograms, a per-process request-trace ring with a slowest-since-
// boot reservoir, Prometheus text exposition, structured logging defaults,
// and the /debug surface (pprof, expvar, build info, trace viewer) every
// daemon mounts on its -debug-addr listener. Everything here is stdlib-only
// and safe on the hot path: histograms are single atomic adds, traces are a
// single-writer-per-slot ring behind an atomic cursor (the same idiom as
// internal/telemetry's sample rings).
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of exponential latency buckets: bucket i counts
// observations in [2^(i-1), 2^i) microseconds (bucket 0 is < 1µs), covering
// up to ~35 minutes — far beyond any plausible request latency.
const HistBuckets = 32

// Histogram is a fixed-bucket, power-of-two latency histogram updated with
// single atomic adds — no locks on the request path, readable concurrently.
// Quantiles are resolved to a bucket's upper bound, i.e. at worst 2x
// resolution, which is plenty for p50/p99 monitoring.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sumUs   atomic.Uint64
	maxUs   atomic.Uint64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	us := uint64(d.Microseconds())
	i := bits.Len64(us)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(us)
	// Racy max: a concurrent larger value may win the CAS first; retry until
	// our value is no longer the max.
	for {
		cur := h.maxUs.Load()
		if us <= cur || h.maxUs.CompareAndSwap(cur, us) {
			break
		}
	}
}

// Merge folds other's observations into h. Neither histogram needs to be
// quiescent, but the merged view is only a consistent snapshot when they are
// (the load generator merges per-worker histograms after its run).
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
	h.count.Add(other.count.Load())
	h.sumUs.Add(other.sumUs.Load())
	for {
		cur := h.maxUs.Load()
		o := other.maxUs.Load()
		if o <= cur || h.maxUs.CompareAndSwap(cur, o) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumMicros returns the sum of all observed latencies in microseconds.
func (h *Histogram) SumMicros() uint64 { return h.sumUs.Load() }

// BucketCounts copies the raw per-bucket counts into dst (sized to
// HistBuckets if needed) and returns it. Bucket i holds observations in
// [2^(i-1), 2^i) µs; its inclusive upper bound is BucketUpperMicros(i).
func (h *Histogram) BucketCounts(dst []uint64) []uint64 {
	if cap(dst) < HistBuckets {
		dst = make([]uint64, HistBuckets)
	}
	dst = dst[:HistBuckets]
	for i := range h.buckets {
		dst[i] = h.buckets[i].Load()
	}
	return dst
}

// BucketUpperMicros returns the inclusive upper bound of bucket i in integer
// microseconds: 2^i - 1 (latencies are whole microseconds, so every value in
// bucket i is ≤ 2^i - 1 and every value above it is > 2^i - 1 — the exact
// `le` bound the Prometheus rendering uses).
func BucketUpperMicros(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// MeanMicros returns the mean latency in microseconds.
func (h *Histogram) MeanMicros() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumUs.Load()) / float64(n)
}

// MaxMicros returns the largest observed latency in microseconds.
func (h *Histogram) MaxMicros() uint64 { return h.maxUs.Load() }

// QuantileMicros returns the upper bound (in microseconds) of the bucket
// containing the q-quantile (q in [0,1]), or 0 when empty.
func (h *Histogram) QuantileMicros(q float64) uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := uint64(q * float64(n))
	if target >= n {
		target = n - 1
	}
	var seen uint64
	for i := 0; i < HistBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > target {
			if i == 0 {
				return 1
			}
			return 1 << uint(i)
		}
	}
	return 1 << (HistBuckets - 1)
}

// EndpointMetrics counts one endpoint's traffic. Errors are responses with a
// 4xx/5xx status; latency covers every response, success or not.
type EndpointMetrics struct {
	Requests atomic.Uint64
	Errors   atomic.Uint64
	Latency  Histogram
}

// Observe records one completed request.
func (m *EndpointMetrics) Observe(d time.Duration, status int) {
	m.Requests.Add(1)
	if status >= 400 {
		m.Errors.Add(1)
	}
	m.Latency.Observe(d)
}
