package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	ids := []uint64{1, 0xdeadbeef, 1 << 63, ^uint64(0)}
	for _, id := range ids {
		s := FormatTraceID(id)
		if len(s) != 16 {
			t.Fatalf("FormatTraceID(%d) = %q, want 16 hex digits", id, s)
		}
		got, ok := ParseTraceID(s)
		if !ok || got != id {
			t.Fatalf("round trip %d -> %q -> (%d, %v)", id, s, got, ok)
		}
	}
	if s := FormatTraceID(0xab); s != "00000000000000ab" {
		t.Fatalf("FormatTraceID(0xab) = %q", s)
	}
}

func TestParseTraceIDForms(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"ab", 0xab, true},
		{"0xAB", 0xab, true},
		{"0XFF", 0xff, true},
		{"00000000000000ab", 0xab, true},
		{"", 0, false},
		{"0", 0, false}, // zero id is "no trace"
		{"0000000000000000", 0, false},
		{"xyz", 0, false},
		{"0123456789abcdef0", 0, false}, // 17 digits
		{"12 34", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseTraceID(c.in)
		if got != c.want || ok != c.ok {
			t.Fatalf("ParseTraceID(%q) = (%d, %v), want (%d, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestNilRecorderAndTraceAreNoOps(t *testing.T) {
	var r *Recorder
	tr := r.Begin(0, DialectJSON, "select", "DC-9")
	if tr != nil {
		t.Fatalf("nil recorder Begin returned a trace")
	}
	// Every method must be callable on the nil trace.
	tr.SetDC("DC-9")
	tr.SetOp("release")
	tr.SetMeta("job", "owner")
	tr.Span("leg", time.Now())
	tr.Finish(200)
	if got := r.Query(TraceFilter{}); got != nil {
		t.Fatalf("nil recorder Query = %v", got)
	}
}

func TestBeginAssignsAndPropagatesIDs(t *testing.T) {
	r := NewRecorder(8)
	if tr := r.Begin(0, DialectJSON, "select", ""); tr.ID == 0 {
		t.Fatalf("ingress Begin left a zero id")
	}
	if tr := r.Begin(42, DialectBinary, "select", ""); tr.ID != 42 {
		t.Fatalf("propagated Begin rewrote the id: %d", tr.ID)
	}
}

func TestTraceLifecyclePublishesSpans(t *testing.T) {
	r := NewRecorder(8)
	tr := r.Begin(7, DialectJSON, "select", "")
	tr.SetDC("DC-9")
	tr.SetMeta("nightly-etl", "alice")
	start := time.Now()
	tr.Span("ledger_reserve", start)
	tr.Finish(200)

	got := r.Query(TraceFilter{ID: 7})
	if len(got) != 1 {
		t.Fatalf("Query by id returned %d traces", len(got))
	}
	pub := got[0]
	if pub.DC != "DC-9" || pub.JobID != "nightly-etl" || pub.Owner != "alice" || pub.Status != 200 {
		t.Fatalf("published trace fields: %+v", pub)
	}
	spans := pub.Spans()
	if len(spans) != 1 || spans[0].Name != "ledger_reserve" {
		t.Fatalf("published spans: %+v", spans)
	}

	// Span slots beyond the fixed capacity drop silently.
	tr2 := r.Begin(8, DialectJSON, "select", "DC-9")
	for i := 0; i < maxSpans+3; i++ {
		tr2.Span("hop", start)
	}
	tr2.Finish(200)
	if n := len(r.Query(TraceFilter{ID: 8})[0].Spans()); n != maxSpans {
		t.Fatalf("span overflow kept %d spans, want %d", n, maxSpans)
	}
}

// put publishes a hand-built trace so tests control DurUs exactly.
func put(r *Recorder, id uint64, durUs int64, dc string) {
	r.record(&Trace{ID: id, Dialect: DialectJSON, Op: "select", DC: dc,
		Start: time.Now(), DurUs: durUs, rec: r})
}

func TestRingWrapKeepsNewestAndSlowest(t *testing.T) {
	r := NewRecorder(4)
	// 40 traces, latency == id µs. The ring keeps the newest 4 (37..40); the
	// slow reservoir keeps the 32 slowest (9..40). The union is 9..40.
	for id := uint64(1); id <= 40; id++ {
		put(r, id, int64(id), "DC-9")
	}
	got := r.Query(TraceFilter{Limit: 1000})
	if len(got) != 32 {
		t.Fatalf("query returned %d traces, want 32", len(got))
	}
	for _, tr := range got {
		if tr.ID < 9 {
			t.Fatalf("trace %d survived both the ring wrap and the reservoir", tr.ID)
		}
	}
	if len(r.Query(TraceFilter{ID: 3})) != 0 {
		t.Fatalf("evicted trace still resolvable")
	}
	if len(r.Query(TraceFilter{ID: 40})) != 1 {
		t.Fatalf("newest trace missing")
	}
	// The slowest-ever trace stays resolvable even after the ring wraps past
	// it many times over.
	put(r, 999, 1_000_000, "DC-9")
	for id := uint64(100); id < 120; id++ {
		put(r, id, 50, "DC-9")
	}
	if len(r.Query(TraceFilter{ID: 999})) != 1 {
		t.Fatalf("slowest trace evicted from the reservoir")
	}
}

func TestQueryFilters(t *testing.T) {
	r := NewRecorder(64)
	base := time.Now()
	putAt := func(id uint64, durUs int64, dc string, off time.Duration) {
		r.record(&Trace{ID: id, Dialect: DialectJSON, Op: "select", DC: dc,
			Start: base.Add(off), DurUs: durUs, rec: r})
	}
	putAt(1, 10, "DC-9", 0)
	putAt(2, 2000, "DC-9", time.Millisecond)
	putAt(3, 30, "DC-8", 2*time.Millisecond)

	if got := r.Query(TraceFilter{DC: "DC-8"}); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("DC filter: %+v", got)
	}
	if got := r.Query(TraceFilter{MinDur: time.Millisecond}); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("MinDur filter: %+v", got)
	}
	if got := r.Query(TraceFilter{ID: 1, DC: "DC-8"}); len(got) != 0 {
		t.Fatalf("conjunctive filter matched: %+v", got)
	}
	if got := r.Query(TraceFilter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit ignored: %d traces", len(got))
	}
	// Newest first.
	got := r.Query(TraceFilter{})
	if len(got) != 3 || got[0].ID != 3 || got[2].ID != 1 {
		t.Fatalf("ordering: %+v", got)
	}
}

// TestRecorderConcurrent hammers record and Query together; it exists for
// the -race run.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr := r.Begin(uint64(g*1000+i+1), DialectBinary, "select", "DC-9")
				tr.Span("leg", time.Now())
				tr.Finish(200)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, tr := range r.Query(TraceFilter{DC: "DC-9", Limit: 10}) {
				_ = tr.Spans()
			}
		}
	}()
	wg.Wait()
}
