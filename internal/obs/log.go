package obs

import (
	"log/slog"
	"os"
	"strings"
)

// NewLogger builds the fleet's standard structured logger: slog text to
// stderr with a `component` attribute on every line. Call sites add `dc`,
// `trace_id`, `err`, etc. as key/value pairs. Level comes from
// HARVEST_LOG_LEVEL (debug|info|warn|error, default info) so a daemon can
// be turned chatty without a rebuild.
func NewLogger(component string) *slog.Logger {
	level := slog.LevelInfo
	switch strings.ToLower(os.Getenv("HARVEST_LOG_LEVEL")) {
	case "debug":
		level = slog.LevelDebug
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	}
	h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	return slog.New(h).With("component", component)
}

// Fatal logs at error level and exits — the slog replacement for
// log.Fatalf in daemon mains.
func Fatal(l *slog.Logger, msg string, args ...any) {
	l.Error(msg, args...)
	os.Exit(1)
}
