package obs

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestPromHistogramGolden pins the exact `le` rendering of a histogram
// family: cumulative buckets at the 2^i-1 integer-microsecond bounds, the
// +Inf bucket, then _sum and _count. A change to this format breaks every
// scraper config, so the expected text is spelled out rather than derived
// from the same code under test.
func TestPromHistogramGolden(t *testing.T) {
	var h Histogram
	h.Observe(1 * time.Microsecond)   // bucket 1 (le="1")
	h.Observe(3 * time.Microsecond)   // bucket 2 (le="3")
	h.Observe(100 * time.Microsecond) // bucket 7 (le="127")

	var p Prom
	p.Metric("m", "histogram", "help text")
	p.Histogram("m", Labels("op", "select"), &h)
	got := string(p.Bytes())

	var want strings.Builder
	want.WriteString("# HELP m help text\n# TYPE m histogram\n")
	cum := 0
	for i := 0; i < HistBuckets; i++ {
		switch i {
		case 1:
			cum = 1
		case 2:
			cum = 2
		case 7:
			cum = 3
		}
		fmt.Fprintf(&want, "m_bucket{op=\"select\",le=\"%d\"} %d\n", BucketUpperMicros(i), cum)
	}
	want.WriteString(`m_bucket{op="select",le="+Inf"} 3` + "\n")
	want.WriteString(`m_sum{op="select"} 104` + "\n")
	want.WriteString(`m_count{op="select"} 3` + "\n")
	if got != want.String() {
		t.Fatalf("histogram rendering drifted:\ngot:\n%s\nwant:\n%s", got, want.String())
	}

	// Spot-pin the load-bearing lines so a future refactor of the loop above
	// cannot silently agree with a broken implementation.
	for _, line := range []string{
		`m_bucket{op="select",le="0"} 0`,
		`m_bucket{op="select",le="1"} 1`,
		`m_bucket{op="select",le="3"} 2`,
		`m_bucket{op="select",le="127"} 3`,
		`m_bucket{op="select",le="2147483647"} 3`,
		`m_bucket{op="select",le="+Inf"} 3`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("rendering missing %q:\n%s", line, got)
		}
	}
}

// TestPromHistogramCumulative checks the bucket series is monotone
// non-decreasing and ends at _count — the invariant the CI smoke job asserts
// against the live daemons.
func TestPromHistogramCumulative(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i%977) * time.Microsecond)
	}
	var p Prom
	p.Histogram("lat", "", &h)
	var prev uint64
	var infVal uint64
	for _, line := range strings.Split(strings.TrimSpace(string(p.Bytes())), "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok || !strings.HasPrefix(name, "lat_bucket") {
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value in %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket series not cumulative at %q (prev %d)", line, prev)
		}
		prev = n
		infVal = n
	}
	if infVal != h.Count() {
		t.Fatalf("+Inf bucket %d != count %d", infVal, h.Count())
	}
}

func TestPromLabelsEscaping(t *testing.T) {
	got := Labels("dc", "a\"b\\c\nd", "op", "select")
	want := `dc="a\"b\\c\nd",op="select"`
	if got != want {
		t.Fatalf("Labels = %q, want %q", got, want)
	}
	if Labels() != "" {
		t.Fatalf("Labels() should be empty")
	}
}

func TestPromScalarSeries(t *testing.T) {
	var p Prom
	p.Metric("up", "gauge", "Is it up.")
	p.Uint("up", "", 1)
	p.Int("delta", Labels("dc", "DC-9"), -4)
	p.Float("ratio", "", 0.25)
	got := string(p.Bytes())
	want := "# HELP up Is it up.\n# TYPE up gauge\nup 1\ndelta{dc=\"DC-9\"} -4\nratio 0.25\n"
	if got != want {
		t.Fatalf("scalar rendering:\ngot  %q\nwant %q", got, want)
	}
}
