package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"harvest/internal/stats"
)

// Job is one submission of a DAG: the query to run, when it arrives, and the
// duration of its previous execution (the only runtime hint the scheduler
// uses, §4.1).
type Job struct {
	ID     int
	Name   string
	DAG    *DAG
	Arrive time.Duration
	// LastRunDuration is how long the job took the last time it executed.
	// Zero means the job never ran before (treated as medium by the
	// scheduler).
	LastRunDuration time.Duration
	// CoresPerTask is the container size the job requests per task.
	CoresPerTask int
	// MemoryMBPerTask is the container memory per task.
	MemoryMBPerTask int
}

// MaxConcurrentCores returns the job's peak concurrent core demand, the
// quantity Algorithm 1 compares against class headroom.
func (j *Job) MaxConcurrentCores() float64 {
	return float64(j.DAG.MaxConcurrentTasks() * j.CoresPerTask)
}

// Catalogue is a set of reusable query DAGs (the 52 TPC-DS Hive queries in
// the paper's evaluation).
type Catalogue struct {
	Queries []*DAG
}

// CatalogueConfig tunes the synthetic catalogue generation.
type CatalogueConfig struct {
	// NumQueries is the number of distinct queries. Zero means 52.
	NumQueries int
	// MeanTaskDuration is the average per-task duration. Zero means 25 s.
	MeanTaskDuration time.Duration
	// MaxStageWidth caps the number of tasks per stage. Zero means 500.
	MaxStageWidth int
}

// DefaultCatalogueConfig mirrors the testbed workload.
func DefaultCatalogueConfig() CatalogueConfig {
	return CatalogueConfig{NumQueries: 52, MeanTaskDuration: 25 * time.Second, MaxStageWidth: 500}
}

// TPCDSLikeCatalogue generates a catalogue of DAGs with the size and shape
// diversity of the TPC-DS query set: a mix of small interactive-style queries,
// medium multi-stage pipelines, and a few very wide or very deep jobs. The
// first entry is always the Figure 7 query-19 DAG.
func TPCDSLikeCatalogue(rng *rand.Rand, cfg CatalogueConfig) (*Catalogue, error) {
	if cfg.NumQueries <= 0 {
		cfg.NumQueries = 52
	}
	if cfg.MeanTaskDuration <= 0 {
		cfg.MeanTaskDuration = 25 * time.Second
	}
	if cfg.MaxStageWidth <= 0 {
		cfg.MaxStageWidth = 500
	}
	cat := &Catalogue{}
	cat.Queries = append(cat.Queries, Query19())
	for i := 1; i < cfg.NumQueries; i++ {
		dag := synthesizeDAG(rng, fmt.Sprintf("query%02d", i), cfg)
		if err := dag.Validate(); err != nil {
			return nil, fmt.Errorf("workload: generated invalid DAG: %w", err)
		}
		cat.Queries = append(cat.Queries, dag)
	}
	return cat, nil
}

// synthesizeDAG builds a random map/reduce-style pipeline: a chain of levels,
// each with one or two stages, whose widths shrink toward the final reducer.
func synthesizeDAG(rng *rand.Rand, name string, cfg CatalogueConfig) *DAG {
	dag := &DAG{Name: name}
	levels := 2 + rng.Intn(6) // 2..7 levels
	// Job "size class": small, medium, large — drives the initial width.
	var width int
	switch rng.Intn(3) {
	case 0:
		width = 2 + rng.Intn(15)
	case 1:
		width = 20 + rng.Intn(100)
	default:
		width = 120 + rng.Intn(cfg.MaxStageWidth-120)
	}
	prevLevel := []int{}
	for level := 0; level < levels; level++ {
		stagesInLevel := 1
		if level > 0 && rng.Float64() < 0.3 {
			stagesInLevel = 2
		}
		var thisLevel []int
		for s := 0; s < stagesInLevel; s++ {
			tasks := width
			if stagesInLevel == 2 {
				tasks = width/2 + 1
			}
			if tasks < 1 {
				tasks = 1
			}
			duration := time.Duration(stats.LogNormal(rng, logMean(cfg.MeanTaskDuration), 0.5))
			if duration < 2*time.Second {
				duration = 2 * time.Second
			}
			kind := "Mapper"
			if level > 0 {
				kind = "Reducer"
			}
			stage := &Stage{
				Name:         fmt.Sprintf("%s %d", kind, len(dag.Stages)+1),
				Tasks:        tasks,
				TaskDuration: duration,
				Deps:         append([]int(nil), prevLevel...),
			}
			dag.Stages = append(dag.Stages, stage)
			thisLevel = append(thisLevel, len(dag.Stages)-1)
		}
		prevLevel = thisLevel
		// Widths shrink as data is aggregated.
		width = width/(2+rng.Intn(3)) + 1
	}
	return dag
}

func logMean(mean time.Duration) float64 {
	// For a lognormal with sigma 0.5, the mean is exp(mu + sigma^2/2).
	const sigma = 0.5
	return math.Log(float64(mean)) - sigma*sigma/2
}

// ArrivalConfig tunes job arrival generation.
type ArrivalConfig struct {
	// MeanInterArrival is the Poisson mean inter-arrival time (300 s in §6.1).
	MeanInterArrival time.Duration
	// Horizon bounds the arrival times.
	Horizon time.Duration
	// CoresPerTask and MemoryMBPerTask size each container request.
	CoresPerTask    int
	MemoryMBPerTask int
	// DurationScale multiplies task durations, used by the datacenter-scale
	// simulations to generate enough load (§6.1). Zero means 1.
	DurationScale float64
}

// DefaultArrivalConfig mirrors the testbed workload.
func DefaultArrivalConfig(horizon time.Duration) ArrivalConfig {
	return ArrivalConfig{
		MeanInterArrival: 300 * time.Second,
		Horizon:          horizon,
		CoresPerTask:     1,
		MemoryMBPerTask:  2048,
		DurationScale:    1,
	}
}

// GenerateArrivals draws a Poisson arrival sequence over the horizon, cycling
// through the catalogue's queries in random order. Every job's LastRunDuration
// is initialized to the query's critical path as a proxy for its previous
// execution (jobs keep falling in the same length type, §4.1).
func (c *Catalogue) GenerateArrivals(rng *rand.Rand, cfg ArrivalConfig) ([]*Job, error) {
	if len(c.Queries) == 0 {
		return nil, fmt.Errorf("workload: empty catalogue")
	}
	if cfg.MeanInterArrival <= 0 {
		return nil, fmt.Errorf("workload: non-positive inter-arrival time")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("workload: non-positive horizon")
	}
	if cfg.CoresPerTask <= 0 {
		cfg.CoresPerTask = 1
	}
	if cfg.MemoryMBPerTask <= 0 {
		cfg.MemoryMBPerTask = 2048
	}
	scale := cfg.DurationScale
	if scale <= 0 {
		scale = 1
	}
	var jobs []*Job
	now := time.Duration(0)
	id := 0
	for {
		gap := time.Duration(stats.Exponential(rng, float64(cfg.MeanInterArrival)))
		now += gap
		if now > cfg.Horizon {
			break
		}
		query := c.Queries[rng.Intn(len(c.Queries))]
		dag := query.Scale(scale)
		jobs = append(jobs, &Job{
			ID:              id,
			Name:            dag.Name,
			DAG:             dag,
			Arrive:          now,
			LastRunDuration: estimatePreviousRun(dag),
			CoresPerTask:    cfg.CoresPerTask,
			MemoryMBPerTask: cfg.MemoryMBPerTask,
		})
		id++
	}
	return jobs, nil
}

// estimatePreviousRun approximates what the job's last execution took on a
// moderately loaded cluster: the critical path plus a serialization penalty
// for very wide jobs.
func estimatePreviousRun(dag *DAG) time.Duration {
	cp := dag.CriticalPath()
	// Wide jobs rarely get all containers at once; assume ~128 concurrent
	// containers were available last time.
	const assumedContainers = 128
	serial := time.Duration(float64(dag.TotalWork()) / assumedContainers)
	if serial > cp {
		return serial
	}
	return cp
}
