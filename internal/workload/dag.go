// Package workload models the batch (secondary tenant) workload: DAG-shaped
// analytics jobs in the style of the TPC-DS Hive queries the paper uses
// (§6.1), and the Poisson arrival process that submits them.
package workload

import (
	"fmt"
	"time"
)

// Stage is one vertex of a job DAG (a mapper or reducer stage in Tez terms):
// a set of identical tasks that can run concurrently once every dependency
// stage has finished.
type Stage struct {
	// Name labels the stage, e.g. "Mapper 2".
	Name string
	// Tasks is the number of parallel tasks in the stage.
	Tasks int
	// TaskDuration is the nominal duration of each task on an uncontended
	// core.
	TaskDuration time.Duration
	// Deps lists the indices of stages that must complete before this stage
	// can start.
	Deps []int
}

// DAG is a job execution graph (Figure 7 shows TPC-DS query 19's DAG).
type DAG struct {
	Name   string
	Stages []*Stage
}

// Validate checks the DAG's structural invariants: at least one stage, every
// stage has at least one task and a positive duration, dependencies are in
// range and acyclic (deps must point to earlier stages — stages are stored in
// topological order).
func (d *DAG) Validate() error {
	if len(d.Stages) == 0 {
		return fmt.Errorf("workload: DAG %q has no stages", d.Name)
	}
	for i, s := range d.Stages {
		if s.Tasks <= 0 {
			return fmt.Errorf("workload: DAG %q stage %d has %d tasks", d.Name, i, s.Tasks)
		}
		if s.TaskDuration <= 0 {
			return fmt.Errorf("workload: DAG %q stage %d has non-positive duration", d.Name, i)
		}
		for _, dep := range s.Deps {
			if dep < 0 || dep >= i {
				return fmt.Errorf("workload: DAG %q stage %d has invalid dependency %d", d.Name, i, dep)
			}
		}
	}
	return nil
}

// TotalTasks returns the number of tasks across all stages.
func (d *DAG) TotalTasks() int {
	total := 0
	for _, s := range d.Stages {
		total += s.Tasks
	}
	return total
}

// TotalWork returns the sum of task durations across all tasks, i.e. the
// core-time the job needs.
func (d *DAG) TotalWork() time.Duration {
	var total time.Duration
	for _, s := range d.Stages {
		total += time.Duration(s.Tasks) * s.TaskDuration
	}
	return total
}

// Levels groups stage indices by their depth in the DAG: level 0 holds stages
// with no dependencies, level k holds stages whose deepest dependency is at
// level k-1. Stages in the same level can run concurrently.
func (d *DAG) Levels() [][]int {
	depth := make([]int, len(d.Stages))
	maxDepth := 0
	for i, s := range d.Stages {
		dep := 0
		for _, j := range s.Deps {
			if depth[j]+1 > dep {
				dep = depth[j] + 1
			}
		}
		depth[i] = dep
		if dep > maxDepth {
			maxDepth = dep
		}
	}
	levels := make([][]int, maxDepth+1)
	for i := range d.Stages {
		levels[depth[i]] = append(levels[depth[i]], i)
	}
	return levels
}

// MaxConcurrentTasks estimates the maximum number of concurrently runnable
// tasks via a breadth-first traversal of the DAG (§4.1): the largest total
// task count across any level. For TPC-DS query 19 this is 469 containers
// (Figure 7).
func (d *DAG) MaxConcurrentTasks() int {
	maxTasks := 0
	for _, level := range d.Levels() {
		total := 0
		for _, i := range level {
			total += d.Stages[i].Tasks
		}
		if total > maxTasks {
			maxTasks = total
		}
	}
	return maxTasks
}

// CriticalPath returns the length of the DAG's critical path assuming each
// stage's tasks all run in parallel: the minimum possible runtime with
// unlimited resources.
func (d *DAG) CriticalPath() time.Duration {
	finish := make([]time.Duration, len(d.Stages))
	var longest time.Duration
	for i, s := range d.Stages {
		var start time.Duration
		for _, j := range s.Deps {
			if finish[j] > start {
				start = finish[j]
			}
		}
		finish[i] = start + s.TaskDuration
		if finish[i] > longest {
			longest = finish[i]
		}
	}
	return longest
}

// Scale returns a copy of the DAG with every task duration multiplied by the
// given factor, which is how the datacenter-scale simulations inflate the
// testbed queries to generate enough load (§6.1).
func (d *DAG) Scale(durationFactor float64) *DAG {
	if durationFactor <= 0 {
		durationFactor = 1
	}
	out := &DAG{Name: d.Name, Stages: make([]*Stage, len(d.Stages))}
	for i, s := range d.Stages {
		cp := *s
		cp.TaskDuration = time.Duration(float64(s.TaskDuration) * durationFactor)
		if cp.TaskDuration <= 0 {
			cp.TaskDuration = time.Millisecond
		}
		cp.Deps = append([]int(nil), s.Deps...)
		out.Stages[i] = &cp
	}
	return out
}

// Query19 returns a DAG modelled on TPC-DS query 19 as shown in Figure 7: a
// deep map/reduce pipeline whose widest level needs 469 concurrent containers.
func Query19() *DAG {
	return &DAG{
		Name: "query19",
		Stages: []*Stage{
			{Name: "Mapper 1", Tasks: 1, TaskDuration: 20 * time.Second},                     // 0
			{Name: "Mapper 2", Tasks: 469, TaskDuration: 35 * time.Second, Deps: []int{0}},   // 1
			{Name: "Mapper 8", Tasks: 1, TaskDuration: 15 * time.Second, Deps: []int{1}},     // 2
			{Name: "Reducer 3", Tasks: 113, TaskDuration: 30 * time.Second, Deps: []int{1}},  // 3
			{Name: "Mapper 9", Tasks: 3, TaskDuration: 12 * time.Second, Deps: []int{2}},     // 4
			{Name: "Reducer 4", Tasks: 126, TaskDuration: 28 * time.Second, Deps: []int{3}},  // 5
			{Name: "Mapper 10", Tasks: 2, TaskDuration: 10 * time.Second, Deps: []int{4}},    // 6
			{Name: "Reducer 5", Tasks: 138, TaskDuration: 26 * time.Second, Deps: []int{5}},  // 7
			{Name: "Mapper 11", Tasks: 1, TaskDuration: 8 * time.Second, Deps: []int{6}},     // 8
			{Name: "Reducer 6", Tasks: 6, TaskDuration: 22 * time.Second, Deps: []int{7, 8}}, // 9
			{Name: "Reducer 7", Tasks: 1, TaskDuration: 18 * time.Second, Deps: []int{9}},    // 10
		},
	}
}
