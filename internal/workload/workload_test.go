package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestQuery19MaxConcurrent(t *testing.T) {
	q := Query19()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 7: the widest level of query 19 needs 469 concurrent containers.
	if got := q.MaxConcurrentTasks(); got != 469 {
		t.Fatalf("MaxConcurrentTasks = %d, want 469", got)
	}
	if q.TotalTasks() <= 469 {
		t.Fatalf("total tasks should exceed the widest level")
	}
	if q.CriticalPath() <= 0 {
		t.Fatalf("critical path should be positive")
	}
}

func TestValidateCatchesBadDAGs(t *testing.T) {
	cases := []*DAG{
		{Name: "empty"},
		{Name: "zerotasks", Stages: []*Stage{{Name: "s", Tasks: 0, TaskDuration: time.Second}}},
		{Name: "zerodur", Stages: []*Stage{{Name: "s", Tasks: 1}}},
		{Name: "badep", Stages: []*Stage{{Name: "s", Tasks: 1, TaskDuration: time.Second, Deps: []int{0}}}},
		{Name: "forwarddep", Stages: []*Stage{
			{Name: "a", Tasks: 1, TaskDuration: time.Second, Deps: []int{1}},
			{Name: "b", Tasks: 1, TaskDuration: time.Second},
		}},
	}
	for _, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("DAG %q should fail validation", d.Name)
		}
	}
}

func TestLevelsAndConcurrency(t *testing.T) {
	d := &DAG{
		Name: "diamond",
		Stages: []*Stage{
			{Name: "src", Tasks: 2, TaskDuration: time.Second},
			{Name: "left", Tasks: 5, TaskDuration: time.Second, Deps: []int{0}},
			{Name: "right", Tasks: 7, TaskDuration: time.Second, Deps: []int{0}},
			{Name: "sink", Tasks: 1, TaskDuration: time.Second, Deps: []int{1, 2}},
		},
	}
	levels := d.Levels()
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	if len(levels[1]) != 2 {
		t.Fatalf("middle level should hold two stages")
	}
	if got := d.MaxConcurrentTasks(); got != 12 {
		t.Fatalf("MaxConcurrentTasks = %d, want 12", got)
	}
	if got := d.CriticalPath(); got != 3*time.Second {
		t.Fatalf("CriticalPath = %v, want 3s", got)
	}
	if got := d.TotalWork(); got != 15*time.Second {
		t.Fatalf("TotalWork = %v, want 15s", got)
	}
}

func TestScale(t *testing.T) {
	d := Query19()
	scaled := d.Scale(2)
	if scaled.Stages[1].TaskDuration != d.Stages[1].TaskDuration*2 {
		t.Fatalf("durations should double")
	}
	// Structure unchanged.
	if scaled.MaxConcurrentTasks() != d.MaxConcurrentTasks() {
		t.Fatalf("scaling must not change the DAG shape")
	}
	// Original untouched.
	if d.Stages[1].TaskDuration != 35*time.Second {
		t.Fatalf("original DAG was mutated")
	}
	same := d.Scale(0)
	if same.Stages[0].TaskDuration != d.Stages[0].TaskDuration {
		t.Fatalf("non-positive factor should mean identity")
	}
}

func TestTPCDSLikeCatalogue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cat, err := TPCDSLikeCatalogue(rng, DefaultCatalogueConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Queries) != 52 {
		t.Fatalf("catalogue has %d queries, want 52", len(cat.Queries))
	}
	if cat.Queries[0].Name != "query19" {
		t.Fatalf("first query should be the Figure 7 DAG")
	}
	sawSmall, sawLarge := false, false
	for _, q := range cat.Queries {
		if err := q.Validate(); err != nil {
			t.Fatalf("query %s invalid: %v", q.Name, err)
		}
		mc := q.MaxConcurrentTasks()
		if mc <= 20 {
			sawSmall = true
		}
		if mc >= 120 {
			sawLarge = true
		}
	}
	if !sawSmall || !sawLarge {
		t.Fatalf("catalogue should mix small and large queries (small=%v large=%v)", sawSmall, sawLarge)
	}
}

func TestCatalogueDeterministic(t *testing.T) {
	a, err := TPCDSLikeCatalogue(rand.New(rand.NewSource(5)), DefaultCatalogueConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TPCDSLikeCatalogue(rand.New(rand.NewSource(5)), DefaultCatalogueConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if a.Queries[i].TotalTasks() != b.Queries[i].TotalTasks() {
			t.Fatalf("catalogue differs across identical seeds at query %d", i)
		}
	}
}

func TestGenerateArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cat, err := TPCDSLikeCatalogue(rng, DefaultCatalogueConfig())
	if err != nil {
		t.Fatal(err)
	}
	horizon := 5 * time.Hour
	jobs, err := cat.GenerateArrivals(rng, DefaultArrivalConfig(horizon))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatalf("expected some arrivals over five hours")
	}
	// Mean inter-arrival 300 s over 5 h -> ~60 jobs.
	if len(jobs) < 30 || len(jobs) > 120 {
		t.Fatalf("job count %d outside plausible range for Poisson(300s) over 5h", len(jobs))
	}
	prev := time.Duration(0)
	for i, j := range jobs {
		if j.Arrive < prev {
			t.Fatalf("arrivals not monotonic at job %d", i)
		}
		prev = j.Arrive
		if j.Arrive > horizon {
			t.Fatalf("arrival beyond horizon")
		}
		if j.ID != i {
			t.Fatalf("job IDs should be sequential")
		}
		if j.LastRunDuration <= 0 {
			t.Fatalf("jobs should carry a previous-run estimate")
		}
		if j.CoresPerTask <= 0 || j.MemoryMBPerTask <= 0 {
			t.Fatalf("container sizing missing")
		}
		if j.MaxConcurrentCores() != float64(j.DAG.MaxConcurrentTasks()*j.CoresPerTask) {
			t.Fatalf("MaxConcurrentCores inconsistent")
		}
	}
}

func TestGenerateArrivalsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	empty := &Catalogue{}
	if _, err := empty.GenerateArrivals(rng, DefaultArrivalConfig(time.Hour)); err == nil {
		t.Errorf("empty catalogue should error")
	}
	cat, err := TPCDSLikeCatalogue(rng, CatalogueConfig{NumQueries: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultArrivalConfig(time.Hour)
	cfg.MeanInterArrival = 0
	if _, err := cat.GenerateArrivals(rng, cfg); err == nil {
		t.Errorf("zero inter-arrival should error")
	}
	cfg = DefaultArrivalConfig(0)
	if _, err := cat.GenerateArrivals(rng, cfg); err == nil {
		t.Errorf("zero horizon should error")
	}
}

func TestGenerateArrivalsDurationScale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cat, err := TPCDSLikeCatalogue(rng, CatalogueConfig{NumQueries: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultArrivalConfig(10 * time.Hour)
	cfg.DurationScale = 3
	jobs, err := cat.GenerateArrivals(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		orig := findQuery(cat, j.Name)
		if orig == nil {
			t.Fatalf("job references unknown query %q", j.Name)
		}
		if j.DAG.Stages[0].TaskDuration != orig.Stages[0].TaskDuration*3 {
			t.Fatalf("task durations should be scaled by 3")
		}
	}
}

func findQuery(cat *Catalogue, name string) *DAG {
	for _, q := range cat.Queries {
		if q.Name == name {
			return q
		}
	}
	return nil
}

func TestMaxConcurrentNeverExceedsTotalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		dag := synthesizeDAG(local, "prop", DefaultCatalogueConfig())
		if err := dag.Validate(); err != nil {
			return false
		}
		return dag.MaxConcurrentTasks() <= dag.TotalTasks() && dag.CriticalPath() <= dag.TotalWork()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
