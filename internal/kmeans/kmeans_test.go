package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClusterErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Cluster(rng, nil, Config{K: 2}); err == nil {
		t.Errorf("empty input should error")
	}
	if _, err := Cluster(rng, [][]float64{{1}}, Config{K: 0}); err == nil {
		t.Errorf("K=0 should error")
	}
	if _, err := Cluster(rng, [][]float64{{}}, Config{K: 1}); err == nil {
		t.Errorf("zero-dimensional points should error")
	}
	if _, err := Cluster(rng, [][]float64{{1, 2}, {1}}, Config{K: 1}); err == nil {
		t.Errorf("dimension mismatch should error")
	}
}

func TestClusterSeparatesObviousGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var points [][]float64
	for i := 0; i < 50; i++ {
		points = append(points, []float64{rng.NormFloat64()*0.05 + 0.1, rng.NormFloat64()*0.05 + 0.1})
	}
	for i := 0; i < 50; i++ {
		points = append(points, []float64{rng.NormFloat64()*0.05 + 0.9, rng.NormFloat64()*0.05 + 0.9})
	}
	res, err := Cluster(rng, points, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// All points in the first half must share a cluster, and differ from the
	// second half's cluster.
	first := res.Assignments[0]
	for i := 1; i < 50; i++ {
		if res.Assignments[i] != first {
			t.Fatalf("point %d assigned to %d, want %d", i, res.Assignments[i], first)
		}
	}
	second := res.Assignments[50]
	if second == first {
		t.Fatalf("groups were merged")
	}
	for i := 51; i < 100; i++ {
		if res.Assignments[i] != second {
			t.Fatalf("point %d assigned to %d, want %d", i, res.Assignments[i], second)
		}
	}
	if res.Sizes[first] != 50 || res.Sizes[second] != 50 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
}

func TestClusterKLargerThanPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := [][]float64{{0}, {1}}
	res, err := Cluster(rng, points, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("expected K capped at 2, got %d centroids", len(res.Centroids))
	}
}

func TestClusterIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	points := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	res, err := Cluster(rng, points, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("identical points should have ~zero inertia, got %v", res.Inertia)
	}
}

func TestClusterInertiaNonIncreasingWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var points [][]float64
	for i := 0; i < 200; i++ {
		points = append(points, []float64{rng.Float64(), rng.Float64()})
	}
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res, err := Cluster(rand.New(rand.NewSource(6)), points, Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		// Allow a tiny tolerance: k-means is a local search.
		if res.Inertia > prev*1.05 {
			t.Fatalf("inertia increased substantially from k-1 to k=%d: %v -> %v", k, prev, res.Inertia)
		}
		prev = res.Inertia
	}
}

func TestClusterAssignmentsValidProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(raw []uint8, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		points := make([][]float64, len(raw))
		for i, r := range raw {
			points[i] = []float64{float64(r) / 255}
		}
		k := int(kRaw)%5 + 1
		res, err := Cluster(rng, points, Config{K: k})
		if err != nil {
			return false
		}
		total := 0
		for _, s := range res.Sizes {
			total += s
		}
		if total != len(points) {
			return false
		}
		for _, a := range res.Assignments {
			if a < 0 || a >= len(res.Centroids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAssign(t *testing.T) {
	centroids := [][]float64{{0, 0}, {1, 1}}
	c, err := Assign([]float64{0.9, 0.8}, centroids)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Fatalf("Assign = %d, want 1", c)
	}
	if _, err := Assign([]float64{1}, centroids); err == nil {
		t.Errorf("dimension mismatch should error")
	}
	if _, err := Assign([]float64{1}, nil); err == nil {
		t.Errorf("no centroids should error")
	}
}

func TestQuantileBuckets(t *testing.T) {
	values := []float64{5, 1, 9, 3, 7, 2}
	buckets, err := QuantileBuckets(values, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted order: 1,2,3,5,7,9 -> buckets 0,0,1,1,2,2
	want := map[float64]int{1: 0, 2: 0, 3: 1, 5: 1, 7: 2, 9: 2}
	for i, v := range values {
		if buckets[i] != want[v] {
			t.Fatalf("value %v in bucket %d, want %d", v, buckets[i], want[v])
		}
	}
}

func TestQuantileBucketsErrors(t *testing.T) {
	if _, err := QuantileBuckets(nil, 3); err == nil {
		t.Errorf("empty values should error")
	}
	if _, err := QuantileBuckets([]float64{1}, 0); err == nil {
		t.Errorf("zero buckets should error")
	}
}

func TestQuantileBucketsFewerValuesThanBuckets(t *testing.T) {
	buckets, err := QuantileBuckets([]float64{4, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if buckets[1] >= 5 || buckets[0] >= 5 {
		t.Fatalf("buckets out of range: %v", buckets)
	}
	if buckets[1] > buckets[0] {
		t.Fatalf("smaller value got larger bucket: %v", buckets)
	}
}

func TestQuantileBucketsMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, len(raw))
		for i, r := range raw {
			values[i] = float64(r)
		}
		buckets, err := QuantileBuckets(values, 3)
		if err != nil {
			return false
		}
		// Property: if value[i] < value[j] then bucket[i] <= bucket[j].
		for i := range values {
			for j := range values {
				if values[i] < values[j] && buckets[i] > buckets[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedQuantileBucketsEqualWeightsMatchesUnweighted(t *testing.T) {
	values := []float64{5, 1, 9, 3, 7, 2}
	weights := []float64{1, 1, 1, 1, 1, 1}
	wb, err := WeightedQuantileBuckets(values, weights, 3)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := QuantileBuckets(values, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if wb[i] != ub[i] {
			t.Fatalf("weighted (%v) and unweighted (%v) differ with equal weights", wb, ub)
		}
	}
}

func TestWeightedQuantileBucketsRespectsWeights(t *testing.T) {
	// One heavy tenant should fill an entire bucket by itself.
	values := []float64{1, 2, 3, 4}
	weights := []float64{100, 1, 1, 1}
	buckets, err := WeightedQuantileBuckets(values, weights, 3)
	if err != nil {
		t.Fatal(err)
	}
	if buckets[0] != 0 {
		t.Fatalf("heaviest lowest-value tenant should be in bucket 0, got %d", buckets[0])
	}
	// The remaining light tenants should be pushed into later buckets.
	if buckets[1] == 0 && buckets[2] == 0 && buckets[3] == 0 {
		t.Fatalf("light tenants should not all share bucket 0: %v", buckets)
	}
}

func TestWeightedQuantileBucketsErrors(t *testing.T) {
	if _, err := WeightedQuantileBuckets(nil, nil, 3); err == nil {
		t.Errorf("empty values should error")
	}
	if _, err := WeightedQuantileBuckets([]float64{1}, []float64{1, 2}, 3); err == nil {
		t.Errorf("weight length mismatch should error")
	}
	if _, err := WeightedQuantileBuckets([]float64{1}, []float64{1}, 0); err == nil {
		t.Errorf("zero buckets should error")
	}
}

func TestWeightedQuantileBucketsZeroWeights(t *testing.T) {
	values := []float64{3, 1, 2}
	weights := []float64{0, 0, 0}
	buckets, err := WeightedQuantileBuckets(values, weights, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range buckets {
		if b < 0 || b >= 3 {
			t.Fatalf("bucket %d out of range for index %d", b, i)
		}
	}
}

func TestWeightedQuantileBucketsNegativeWeightTreatedAsZero(t *testing.T) {
	values := []float64{1, 2}
	weights := []float64{-5, 10}
	buckets, err := WeightedQuantileBuckets(values, weights, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range buckets {
		if b < 0 || b >= 2 {
			t.Fatalf("bucket out of range: %v", buckets)
		}
	}
}

func TestClusterFromConvergesFromSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Two well-separated blobs.
	var points [][]float64
	for i := 0; i < 40; i++ {
		points = append(points, []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
	}
	for i := 0; i < 40; i++ {
		points = append(points, []float64{5 + rng.NormFloat64()*0.1, 5 + rng.NormFloat64()*0.1})
	}
	cold, err := Cluster(rng, points, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-start from the converged centroids: must reach the same fixed
	// point in one or two iterations with identical assignments.
	warm, err := ClusterFrom(points, cold.Centroids, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > 2 {
		t.Errorf("warm start took %d iterations, want <= 2", warm.Iterations)
	}
	for i := range points {
		if warm.Assignments[i] != cold.Assignments[i] {
			t.Fatalf("assignment %d differs: warm %d, cold %d", i, warm.Assignments[i], cold.Assignments[i])
		}
	}
	if math.Abs(warm.Inertia-cold.Inertia) > 1e-9 {
		t.Errorf("inertia differs: warm %v, cold %v", warm.Inertia, cold.Inertia)
	}
	// Seeds are not mutated.
	seeds := [][]float64{{100, 100}, {-100, -100}}
	seedCopy := [][]float64{{100, 100}, {-100, -100}}
	if _, err := ClusterFrom(points, seeds, Config{}); err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		for d := range seeds[i] {
			if seeds[i][d] != seedCopy[i][d] {
				t.Fatal("ClusterFrom mutated its seeds")
			}
		}
	}
}

func TestClusterFromErrors(t *testing.T) {
	points := [][]float64{{1, 2}, {3, 4}}
	if _, err := ClusterFrom(nil, [][]float64{{0, 0}}, Config{}); err == nil {
		t.Error("empty points should error")
	}
	if _, err := ClusterFrom(points, nil, Config{}); err == nil {
		t.Error("no seeds should error")
	}
	if _, err := ClusterFrom(points, [][]float64{{1}}, Config{}); err == nil {
		t.Error("seed dimension mismatch should error")
	}
	// More seeds than points: cluster count clamps to the point count.
	res, err := ClusterFrom(points, [][]float64{{1, 2}, {3, 4}, {5, 6}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Errorf("centroids = %d, want clamped to 2", len(res.Centroids))
	}
}
