// Package kmeans implements K-Means clustering with k-means++ seeding. The
// clustering service uses it to group primary tenants with similar utilization
// profiles into utilization classes (§4.1), and the replica placement code uses
// simple 1-D quantile clustering derived from the same primitives.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrNoPoints is returned when clustering is requested over an empty dataset.
var ErrNoPoints = errors.New("kmeans: no points")

// Result holds the outcome of a clustering run.
type Result struct {
	// Centroids holds one centroid per cluster.
	Centroids [][]float64
	// Assignments maps each input point to its cluster index.
	Assignments []int
	// Sizes holds the number of points per cluster.
	Sizes []int
	// Inertia is the sum of squared distances from each point to its centroid.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Config tunes a clustering run.
type Config struct {
	// K is the desired number of clusters. If there are fewer distinct points
	// than K, the effective number of clusters is reduced.
	K int
	// MaxIterations bounds the Lloyd loop. Zero means a default of 100.
	MaxIterations int
	// Tolerance stops the loop when no centroid moves more than this squared
	// distance. Zero means 1e-9.
	Tolerance float64
}

// validate checks the point set and normalizes the config, returning the
// point dimensionality and the effective (iteration, tolerance) knobs.
func validate(points [][]float64, cfg Config) (dim, maxIter int, tol float64, err error) {
	if len(points) == 0 {
		return 0, 0, 0, ErrNoPoints
	}
	dim = len(points[0])
	if dim == 0 {
		return 0, 0, 0, errors.New("kmeans: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return 0, 0, 0, fmt.Errorf("kmeans: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	maxIter = cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	tol = cfg.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}
	return dim, maxIter, tol, nil
}

// Cluster groups points into cfg.K clusters. Every point must have the same
// dimensionality. The rng drives the k-means++ seeding so results are
// reproducible for a fixed seed.
func Cluster(rng *rand.Rand, points [][]float64, cfg Config) (*Result, error) {
	dim, maxIter, tol, err := validate(points, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: K must be positive, got %d", cfg.K)
	}
	k := cfg.K
	if k > len(points) {
		k = len(points)
	}
	return lloyd(points, seedPlusPlus(rng, points, k), dim, maxIter, tol), nil
}

// ClusterFrom runs K-Means starting from the given seed centroids instead of
// k-means++ — the warm-start entry point incremental re-clustering uses to
// resume from a previous generation's converged centroids. cfg.K is ignored;
// the cluster count is len(seeds) (clamped to the point count). The seeds are
// copied, never mutated, and need not be data points. Seed dimensionality
// must match the points.
func ClusterFrom(points [][]float64, seeds [][]float64, cfg Config) (*Result, error) {
	dim, maxIter, tol, err := validate(points, cfg)
	if err != nil {
		return nil, err
	}
	if len(seeds) == 0 {
		return nil, errors.New("kmeans: no seed centroids")
	}
	k := len(seeds)
	if k > len(points) {
		k = len(points)
	}
	centroids := make([][]float64, k)
	for i := 0; i < k; i++ {
		if len(seeds[i]) != dim {
			return nil, fmt.Errorf("kmeans: seed %d has dimension %d, want %d", i, len(seeds[i]), dim)
		}
		centroids[i] = append([]float64(nil), seeds[i]...)
	}
	return lloyd(points, centroids, dim, maxIter, tol), nil
}

// lloyd runs the Lloyd iteration to convergence from the given starting
// centroids (which it takes ownership of) and computes the final assignment
// and inertia.
func lloyd(points, centroids [][]float64, dim, maxIter int, tol float64) *Result {
	k := len(centroids)
	assignments := make([]int, len(points))
	sizes := make([]int, k)
	var iterations int
	for iterations = 1; iterations <= maxIter; iterations++ {
		// Assignment step.
		for i, p := range points {
			assignments[i] = nearest(p, centroids)
		}
		// Update step.
		newCentroids := make([][]float64, k)
		for c := range newCentroids {
			newCentroids[c] = make([]float64, dim)
		}
		for c := range sizes {
			sizes[c] = 0
		}
		for i, p := range points {
			c := assignments[i]
			sizes[c]++
			for d, v := range p {
				newCentroids[c][d] += v
			}
		}
		for c := range newCentroids {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its centroid.
				newCentroids[c] = append([]float64(nil), points[farthestPoint(points, centroids, assignments)]...)
				continue
			}
			for d := range newCentroids[c] {
				newCentroids[c][d] /= float64(sizes[c])
			}
		}
		moved := 0.0
		for c := range centroids {
			moved += squaredDistance(centroids[c], newCentroids[c])
		}
		centroids = newCentroids
		if moved <= tol {
			break
		}
	}
	// Final assignment and inertia with the converged centroids.
	inertia := 0.0
	for c := range sizes {
		sizes[c] = 0
	}
	for i, p := range points {
		assignments[i] = nearest(p, centroids)
		sizes[assignments[i]]++
		inertia += squaredDistance(p, centroids[assignments[i]])
	}
	return &Result{
		Centroids:   centroids,
		Assignments: assignments,
		Sizes:       sizes,
		Inertia:     inertia,
		Iterations:  iterations,
	}
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy:
// the first uniformly at random, the rest proportional to the squared
// distance from the nearest chosen centroid.
func seedPlusPlus(rng *rand.Rand, points [][]float64, k int) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := rng.Intn(len(points))
	centroids = append(centroids, append([]float64(nil), points[first]...))
	dists := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			d := squaredDistance(p, centroids[nearest(p, centroids)])
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All remaining points coincide with existing centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), points[rng.Intn(len(points))]...))
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		chosen := len(points) - 1
		for i, d := range dists {
			acc += d
			if target < acc {
				chosen = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[chosen]...))
	}
	return centroids
}

func nearest(p []float64, centroids [][]float64) int {
	best := 0
	bestDist := math.Inf(1)
	for c, centroid := range centroids {
		d := squaredDistance(p, centroid)
		if d < bestDist {
			bestDist = d
			best = c
		}
	}
	return best
}

func farthestPoint(points [][]float64, centroids [][]float64, assignments []int) int {
	best := 0
	bestDist := -1.0
	for i, p := range points {
		d := squaredDistance(p, centroids[assignments[i]])
		if d > bestDist {
			bestDist = d
			best = i
		}
	}
	return best
}

func squaredDistance(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Assign returns the index of the centroid nearest to p. It is used to map a
// new tenant profile onto an existing clustering without re-running K-Means.
func Assign(p []float64, centroids [][]float64) (int, error) {
	if len(centroids) == 0 {
		return 0, errors.New("kmeans: no centroids")
	}
	if len(p) != len(centroids[0]) {
		return 0, fmt.Errorf("kmeans: point dimension %d does not match centroid dimension %d", len(p), len(centroids[0]))
	}
	return nearest(p, centroids), nil
}

// QuantileBuckets splits the values into n groups with (as close as possible)
// equal population by value rank, returning for each input index its bucket
// in [0, n). This is the 1-D "equal share" split used by the replica placement
// algorithm for reimage-rate and peak-utilization dimensions, and by the
// characterization's infrequent/intermediate/frequent reimage grouping (§3.3).
func QuantileBuckets(values []float64, n int) ([]int, error) {
	if len(values) == 0 {
		return nil, ErrNoPoints
	}
	if n <= 0 {
		return nil, fmt.Errorf("kmeans: bucket count must be positive, got %d", n)
	}
	type indexed struct {
		value float64
		index int
	}
	order := make([]indexed, len(values))
	for i, v := range values {
		order[i] = indexed{value: v, index: i}
	}
	// Stable ordering by value then original index for determinism.
	// Insertion sort is sufficient for the modest tenant counts involved;
	// datacenters hold a few thousand tenants at most.
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && (order[j].value < order[j-1].value ||
			(order[j].value == order[j-1].value && order[j].index < order[j-1].index)) {
			order[j], order[j-1] = order[j-1], order[j]
			j--
		}
	}
	out := make([]int, len(values))
	for rank, item := range order {
		bucket := rank * n / len(values)
		if bucket >= n {
			bucket = n - 1
		}
		out[item.index] = bucket
	}
	return out, nil
}

// WeightedQuantileBuckets splits items into n buckets of (approximately) equal
// total weight by value rank. It returns the bucket of each input index. This
// implements the paper's requirement that each of the 3x3 placement classes
// hold the same amount of available storage (S/9): values are reimage rates or
// peak utilizations, weights are per-tenant available bytes.
func WeightedQuantileBuckets(values, weights []float64, n int) ([]int, error) {
	if len(values) == 0 {
		return nil, ErrNoPoints
	}
	if len(weights) != len(values) {
		return nil, fmt.Errorf("kmeans: %d weights for %d values", len(weights), len(values))
	}
	if n <= 0 {
		return nil, fmt.Errorf("kmeans: bucket count must be positive, got %d", n)
	}
	type indexed struct {
		value  float64
		weight float64
		index  int
	}
	order := make([]indexed, len(values))
	totalWeight := 0.0
	for i, v := range values {
		w := weights[i]
		if w < 0 {
			w = 0
		}
		order[i] = indexed{value: v, weight: w, index: i}
		totalWeight += w
	}
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && (order[j].value < order[j-1].value ||
			(order[j].value == order[j-1].value && order[j].index < order[j-1].index)) {
			order[j], order[j-1] = order[j-1], order[j]
			j--
		}
	}
	out := make([]int, len(values))
	if totalWeight == 0 {
		// Degenerate: fall back to equal-population buckets.
		for rank, item := range order {
			bucket := rank * n / len(order)
			if bucket >= n {
				bucket = n - 1
			}
			out[item.index] = bucket
		}
		return out, nil
	}
	perBucket := totalWeight / float64(n)
	acc := 0.0
	bucket := 0
	for _, item := range order {
		// Advance to the next bucket once the current one holds its share,
		// but never split a single tenant across buckets (§4.2: a tenant
		// belongs to exactly one class).
		for bucket < n-1 && acc >= perBucket*float64(bucket+1) {
			bucket++
		}
		out[item.index] = bucket
		acc += item.weight
	}
	return out, nil
}
