// Package cluster models the physical datacenter state shared by the
// harvesting systems: servers owned by primary tenants, the utilization each
// primary exerts over time, the per-server resource reserve, and the
// harvestable storage.
//
// The YARN-like scheduler (yarnsim) layers container allocations on top of
// this model, and the HDFS-like file system (hdfssim) layers block storage.
package cluster

import (
	"fmt"
	"math"
	"time"

	"harvest/internal/tenant"
	"harvest/internal/timeseries"
)

// Server is one physical machine: its primary tenant, its capacity, its
// reserve, and the utilization series the primary replays during simulation.
type Server struct {
	ID        tenant.ServerID
	Tenant    *tenant.Tenant
	Resources tenant.Resources
	Reserve   tenant.Reserve

	// Utilization is the CPU utilization trace the primary tenant replays on
	// this server (a fraction of the server's cores). It defaults to the
	// tenant's average-server trace and can be replaced by scaled versions
	// when sweeping the utilization spectrum.
	Utilization *timeseries.Series

	// Reimaged tracks whether the server's disk has been reimaged and not yet
	// restored; harvested data on it is gone and new data cannot be placed
	// until the file system notices.
	Reimaged bool
}

// PrimaryUtilization returns the primary tenant's CPU utilization fraction at
// the given simulation time.
func (s *Server) PrimaryUtilization(now time.Duration) float64 {
	if s.Utilization == nil {
		return 0
	}
	return s.Utilization.At(now)
}

// PrimaryCores returns the number of cores the primary tenant occupies at the
// given time, rounded up to a whole core as the NM-H does before reporting to
// the RM (§5.3).
func (s *Server) PrimaryCores(now time.Duration) int {
	return s.CoresForUtilization(s.PrimaryUtilization(now))
}

// CoresForUtilization converts a utilization fraction into the whole cores it
// occupies on this server, rounded up and capped at capacity. It lets callers
// that already hold a sampled utilization (e.g. a per-heartbeat cache) apply
// the same NM-H rounding rule without re-reading the time series.
func (s *Server) CoresForUtilization(util float64) int {
	cores := int(math.Ceil(util * float64(s.Resources.Cores)))
	if cores > s.Resources.Cores {
		cores = s.Resources.Cores
	}
	return cores
}

// HarvestableCores returns how many cores are currently available to
// secondary tenants: capacity minus the primary's (rounded-up) usage minus the
// reserve. It never goes below zero.
func (s *Server) HarvestableCores(now time.Duration) int {
	free := s.Resources.Cores - s.PrimaryCores(now) - s.Reserve.Cores
	if free < 0 {
		return 0
	}
	return free
}

// IsBusy reports whether the primary's utilization leaves no room outside the
// reserve, which is when DN-H denies accesses and NM-H kills containers.
func (s *Server) IsBusy(now time.Duration) bool {
	return s.HarvestableCores(now) == 0
}

// Cluster is a set of servers owned by a tenant population.
type Cluster struct {
	Population *tenant.Population
	Servers    map[tenant.ServerID]*Server

	// serverList preserves a deterministic iteration order.
	serverList []*Server
}

// New builds a cluster from a population, giving every server the same
// capacity and reserve, and the owning tenant's utilization trace.
func New(pop *tenant.Population, res tenant.Resources, reserve tenant.Reserve) (*Cluster, error) {
	if pop == nil || len(pop.Tenants) == 0 {
		return nil, fmt.Errorf("cluster: empty population")
	}
	if res.Cores <= 0 {
		return nil, fmt.Errorf("cluster: servers need at least one core")
	}
	if reserve.Cores < 0 || reserve.Cores >= res.Cores {
		return nil, fmt.Errorf("cluster: reserve of %d cores invalid for %d-core servers", reserve.Cores, res.Cores)
	}
	c := &Cluster{
		Population: pop,
		Servers:    make(map[tenant.ServerID]*Server, pop.NumServers()),
	}
	for _, t := range pop.Tenants {
		for _, sid := range t.Servers {
			srv := &Server{
				ID:          sid,
				Tenant:      t,
				Resources:   res,
				Reserve:     reserve,
				Utilization: t.Utilization,
			}
			if t.HarvestableBytesPerServer > 0 {
				srv.Resources.DiskBytes = t.HarvestableBytesPerServer
			}
			c.Servers[sid] = srv
			c.serverList = append(c.serverList, srv)
		}
	}
	return c, nil
}

// ServerList returns the servers in a deterministic order (tenant order).
func (c *Cluster) ServerList() []*Server { return c.serverList }

// NumServers returns the number of servers in the cluster.
func (c *Cluster) NumServers() int { return len(c.serverList) }

// Server returns the server with the given id, or nil.
func (c *Cluster) Server(id tenant.ServerID) *Server { return c.Servers[id] }

// ScaleUtilization replaces every server's utilization series with a version
// of its tenant's trace rescaled so the cluster-wide average primary
// utilization becomes approximately the target (§6.1 scales the real traces
// linearly or with nth-root functions to explore the utilization spectrum).
func (c *Cluster) ScaleUtilization(target float64, method timeseries.ScalingMethod) {
	// Scale per tenant so every server of a tenant replays the same trace.
	scaled := make(map[tenant.ID]*timeseries.Series, len(c.Population.Tenants))
	for _, t := range c.Population.Tenants {
		if t.Utilization == nil {
			continue
		}
		scaled[t.ID] = t.Utilization.ScaleToMean(target, method)
	}
	for _, srv := range c.serverList {
		if s, ok := scaled[srv.Tenant.ID]; ok {
			srv.Utilization = s
		}
	}
}

// AveragePrimaryUtilization returns the mean primary utilization across all
// servers at the given time.
func (c *Cluster) AveragePrimaryUtilization(now time.Duration) float64 {
	if len(c.serverList) == 0 {
		return 0
	}
	sum := 0.0
	for _, srv := range c.serverList {
		sum += srv.PrimaryUtilization(now)
	}
	return sum / float64(len(c.serverList))
}

// MeanPrimaryUtilization returns the time-averaged primary utilization of the
// whole cluster over its tenants' traces, the x-axis of Figures 13 and 16.
func (c *Cluster) MeanPrimaryUtilization() float64 {
	if len(c.serverList) == 0 {
		return 0
	}
	sum := 0.0
	for _, srv := range c.serverList {
		if srv.Utilization != nil {
			sum += srv.Utilization.Mean()
		}
	}
	return sum / float64(len(c.serverList))
}

// TotalCores returns the cluster's total core count.
func (c *Cluster) TotalCores() int {
	total := 0
	for _, srv := range c.serverList {
		total += srv.Resources.Cores
	}
	return total
}

// BusyFraction returns the fraction of servers that are busy at the given
// time (primary utilization leaves nothing outside the reserve).
func (c *Cluster) BusyFraction(now time.Duration) float64 {
	if len(c.serverList) == 0 {
		return 0
	}
	busy := 0
	for _, srv := range c.serverList {
		if srv.IsBusy(now) {
			busy++
		}
	}
	return float64(busy) / float64(len(c.serverList))
}
