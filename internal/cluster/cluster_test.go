package cluster

import (
	"math"
	"testing"
	"time"

	"harvest/internal/tenant"
	"harvest/internal/timeseries"
	"harvest/internal/trace"
)

func twoTenantPopulation(t *testing.T) *tenant.Population {
	t.Helper()
	low := &tenant.Tenant{
		ID:          0,
		Environment: "env-low",
		Servers:     []tenant.ServerID{0, 1},
		Utilization: timeseries.New(timeseries.SlotDuration, []float64{0.2, 0.2, 0.2, 0.2}),
	}
	high := &tenant.Tenant{
		ID:          1,
		Environment: "env-high",
		Servers:     []tenant.ServerID{2},
		Utilization: timeseries.New(timeseries.SlotDuration, []float64{0.9, 0.9, 0.9, 0.9}),
	}
	pop, err := tenant.NewPopulation("DC-T", []*tenant.Tenant{low, high})
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestNewValidation(t *testing.T) {
	pop := twoTenantPopulation(t)
	if _, err := New(nil, tenant.DefaultServerResources(), tenant.DefaultReserve()); err == nil {
		t.Errorf("nil population should error")
	}
	if _, err := New(pop, tenant.Resources{Cores: 0}, tenant.DefaultReserve()); err == nil {
		t.Errorf("zero cores should error")
	}
	if _, err := New(pop, tenant.Resources{Cores: 4}, tenant.Reserve{Cores: 4}); err == nil {
		t.Errorf("reserve as large as capacity should error")
	}
}

func TestNewBuildsServers(t *testing.T) {
	pop := twoTenantPopulation(t)
	c, err := New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumServers() != 3 {
		t.Fatalf("NumServers = %d, want 3", c.NumServers())
	}
	if c.Server(0) == nil || c.Server(2) == nil || c.Server(99) != nil {
		t.Fatalf("server lookup wrong")
	}
	if c.TotalCores() != 3*12 {
		t.Fatalf("TotalCores = %d", c.TotalCores())
	}
	if got := c.Server(2).Tenant.ID; got != 1 {
		t.Fatalf("server 2 owned by tenant %v, want 1", got)
	}
}

func TestPrimaryCoresAndHarvestable(t *testing.T) {
	pop := twoTenantPopulation(t)
	c, err := New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	low := c.Server(0)
	// 0.2 * 12 = 2.4 -> 3 cores rounded up.
	if got := low.PrimaryCores(0); got != 3 {
		t.Fatalf("PrimaryCores = %d, want 3", got)
	}
	// 12 - 3 - 4 = 5 harvestable.
	if got := low.HarvestableCores(0); got != 5 {
		t.Fatalf("HarvestableCores = %d, want 5", got)
	}
	if low.IsBusy(0) {
		t.Fatalf("low-utilization server should not be busy")
	}
	high := c.Server(2)
	// 0.9 * 12 = 10.8 -> 11 cores; 12 - 11 - 4 < 0 -> 0 harvestable, busy.
	if got := high.HarvestableCores(0); got != 0 {
		t.Fatalf("HarvestableCores = %d, want 0", got)
	}
	if !high.IsBusy(0) {
		t.Fatalf("high-utilization server should be busy")
	}
}

func TestPrimaryUtilizationNilSeries(t *testing.T) {
	s := &Server{Resources: tenant.DefaultServerResources(), Reserve: tenant.DefaultReserve()}
	if s.PrimaryUtilization(time.Hour) != 0 || s.PrimaryCores(0) != 0 {
		t.Fatalf("nil series should report zero utilization")
	}
	if s.HarvestableCores(0) != 8 {
		t.Fatalf("idle server should expose capacity minus reserve")
	}
}

func TestPrimaryCoresCapsAtCapacity(t *testing.T) {
	s := &Server{
		Resources:   tenant.Resources{Cores: 4},
		Reserve:     tenant.Reserve{Cores: 1},
		Utilization: timeseries.New(time.Minute, []float64{1.0}),
	}
	if got := s.PrimaryCores(0); got != 4 {
		t.Fatalf("PrimaryCores = %d, want 4", got)
	}
}

func TestAverageAndBusyFraction(t *testing.T) {
	pop := twoTenantPopulation(t)
	c, err := New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	avg := c.AveragePrimaryUtilization(0)
	want := (0.2 + 0.2 + 0.9) / 3
	if math.Abs(avg-want) > 1e-9 {
		t.Fatalf("AveragePrimaryUtilization = %v, want %v", avg, want)
	}
	if math.Abs(c.MeanPrimaryUtilization()-want) > 1e-9 {
		t.Fatalf("MeanPrimaryUtilization = %v, want %v", c.MeanPrimaryUtilization(), want)
	}
	if got := c.BusyFraction(0); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Fatalf("BusyFraction = %v, want 1/3", got)
	}
}

func TestScaleUtilization(t *testing.T) {
	profile, ok := trace.ProfileByName("DC-9")
	if !ok {
		t.Fatal("missing profile")
	}
	pop, err := trace.NewGenerator(profile.Scaled(0.05), 3).Generate()
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{0.2, 0.5} {
		for _, method := range []timeseries.ScalingMethod{timeseries.ScaleLinear, timeseries.ScaleRoot} {
			c.ScaleUtilization(target, method)
			got := c.MeanPrimaryUtilization()
			// Per-tenant scaling hits the target per tenant; the per-server
			// mean can deviate a little because tenants differ in size.
			if math.Abs(got-target) > 0.08 {
				t.Fatalf("scaled mean utilization = %v, want ~%v (method %v)", got, target, method)
			}
		}
	}
}

func TestHarvestableBytesFlowThrough(t *testing.T) {
	pop := twoTenantPopulation(t)
	pop.Tenants[0].HarvestableBytesPerServer = 1234
	c, err := New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Server(0).Resources.DiskBytes; got != 1234 {
		t.Fatalf("DiskBytes = %d, want 1234", got)
	}
}

func TestEmptyClusterAggregates(t *testing.T) {
	c := &Cluster{}
	if c.AveragePrimaryUtilization(0) != 0 || c.MeanPrimaryUtilization() != 0 || c.BusyFraction(0) != 0 {
		t.Fatalf("empty cluster aggregates should be zero")
	}
}
