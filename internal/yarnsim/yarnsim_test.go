package yarnsim

import (
	"math/rand"
	"testing"
	"time"

	"harvest/internal/cluster"
	"harvest/internal/core"
	"harvest/internal/tenant"
	"harvest/internal/timeseries"
	"harvest/internal/trace"
	"harvest/internal/workload"
)

// flatSeries builds a constant utilization trace.
func flatSeries(level float64) *timeseries.Series {
	values := make([]float64, 1440)
	for i := range values {
		values[i] = level
	}
	return timeseries.New(timeseries.SlotDuration, values)
}

// burstySeries builds a trace that idles then spikes to the given level.
func burstySeries(idle, spike float64, spikeEvery int) *timeseries.Series {
	values := make([]float64, 1440)
	for i := range values {
		if spikeEvery > 0 && (i/spikeEvery)%2 == 1 {
			values[i] = spike
		} else {
			values[i] = idle
		}
	}
	return timeseries.New(timeseries.SlotDuration, values)
}

// testCluster builds a small cluster of two tenants: a calm one and a bursty
// one, ten servers each.
func testCluster(t *testing.T) (*cluster.Cluster, *tenant.Population) {
	t.Helper()
	calm := &tenant.Tenant{
		ID: 0, Environment: "calm", Servers: serverIDs(0, 10), Utilization: flatSeries(0.2),
	}
	bursty := &tenant.Tenant{
		ID: 1, Environment: "bursty", Servers: serverIDs(10, 10), Utilization: burstySeries(0.1, 0.95, 4),
	}
	pop, err := tenant.NewPopulation("DC-T", []*tenant.Tenant{calm, bursty})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	return cl, pop
}

func serverIDs(lo, n int) []tenant.ServerID {
	out := make([]tenant.ServerID, n)
	for i := range out {
		out[i] = tenant.ServerID(lo + i)
	}
	return out
}

// smallJobs builds a simple workload of identical two-stage jobs.
func smallJobs(n int, gap time.Duration, taskDur time.Duration) []*workload.Job {
	var jobs []*workload.Job
	for i := 0; i < n; i++ {
		dag := &workload.DAG{
			Name: "small",
			Stages: []*workload.Stage{
				{Name: "map", Tasks: 8, TaskDuration: taskDur},
				{Name: "reduce", Tasks: 2, TaskDuration: taskDur, Deps: []int{0}},
			},
		}
		jobs = append(jobs, &workload.Job{
			ID: i, Name: "small", DAG: dag, Arrive: time.Duration(i) * gap,
			LastRunDuration: 2 * taskDur, CoresPerTask: 1, MemoryMBPerTask: 1024,
		})
	}
	return jobs
}

func TestNewSimulationValidation(t *testing.T) {
	cl, _ := testCluster(t)
	jobs := smallJobs(1, time.Minute, 30*time.Second)
	if _, err := NewSimulation(nil, jobs, DefaultConfig(PolicyPT)); err == nil {
		t.Errorf("nil cluster should error")
	}
	cfg := DefaultConfig(PolicyPT)
	cfg.HeartbeatInterval = 0
	if _, err := NewSimulation(cl, jobs, cfg); err == nil {
		t.Errorf("zero heartbeat should error")
	}
	if _, err := NewSimulation(cl, jobs, DefaultConfig(PolicyHistory)); err == nil {
		t.Errorf("history policy without selector should error")
	}
	bad := smallJobs(1, time.Minute, 30*time.Second)
	bad[0].DAG = &workload.DAG{Name: "empty"}
	if _, err := NewSimulation(cl, bad, DefaultConfig(PolicyPT)); err == nil {
		t.Errorf("invalid job DAG should error")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyStock.String() != "YARN-Stock" || PolicyPT.String() != "YARN-PT" ||
		PolicyHistory.String() != "YARN-H/Tez-H" {
		t.Errorf("unexpected policy names")
	}
	if Policy(9).String() == "" {
		t.Errorf("unknown policy should still have a string")
	}
}

func TestStockCompletesJobs(t *testing.T) {
	cl, _ := testCluster(t)
	jobs := smallJobs(5, 2*time.Minute, 30*time.Second)
	sim, err := NewSimulation(cl, jobs, DefaultConfig(PolicyStock))
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(2 * time.Hour)
	if res.CompletedJobs != 5 {
		t.Fatalf("completed %d jobs, want 5", res.CompletedJobs)
	}
	if res.TasksKilled != 0 {
		t.Fatalf("stock YARN never kills containers, got %d kills", res.TasksKilled)
	}
	if res.AvgJobRuntime <= 0 {
		t.Fatalf("average runtime should be positive")
	}
	for _, j := range res.Jobs {
		if !j.Completed {
			t.Fatalf("job %d incomplete", j.JobID)
		}
		if j.Finish < j.Start || j.Start < j.Arrive {
			t.Fatalf("job %d has inconsistent timeline: %+v", j.JobID, j)
		}
	}
}

func TestPTKillsContainersUnderBursts(t *testing.T) {
	cl, _ := testCluster(t)
	// Saturate the cluster so containers must land on the bursty servers too.
	jobs := smallJobs(40, 20*time.Second, 2*time.Minute)
	cfg := DefaultConfig(PolicyPT)
	cfg.HeartbeatInterval = 30 * time.Second
	sim, err := NewSimulation(cl, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(4 * time.Hour)
	if res.TasksKilled == 0 {
		t.Fatalf("expected kills when the bursty primary spikes")
	}
	if res.CompletedJobs == 0 {
		t.Fatalf("some jobs should still complete")
	}
}

func TestPTRespectsPrimaryAndReserve(t *testing.T) {
	cl, _ := testCluster(t)
	jobs := smallJobs(40, 20*time.Second, 2*time.Minute)
	cfg := DefaultConfig(PolicyPT)
	cfg.HeartbeatInterval = 30 * time.Second
	violated := false
	cfg.Observer = func(now time.Duration, srv *cluster.Server, secondaryCores int) {
		// After a heartbeat's enforcement, allocations must fit under
		// capacity - primary - reserve (primary cores rounded up).
		budget := srv.Resources.Cores - srv.PrimaryCores(now) - srv.Reserve.Cores
		if budget < 0 {
			budget = 0
		}
		if secondaryCores > budget {
			violated = true
		}
	}
	sim, err := NewSimulation(cl, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(2 * time.Hour)
	if violated {
		t.Fatalf("secondary allocations exceeded the harvested budget after enforcement")
	}
}

func TestHistoryPolicyUsesCalmServersForLongJobs(t *testing.T) {
	cl, pop := testCluster(t)
	svc := core.NewClusteringService(core.DefaultClusteringConfig())
	clustering, err := svc.Cluster(pop)
	if err != nil {
		t.Fatal(err)
	}
	selector, err := core.NewSelector(core.DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// One long job (last run far above the long threshold).
	dag := &workload.DAG{
		Name: "long",
		Stages: []*workload.Stage{
			{Name: "work", Tasks: 20, TaskDuration: 5 * time.Minute},
		},
	}
	jobs := []*workload.Job{{
		ID: 0, Name: "long", DAG: dag, Arrive: 0,
		LastRunDuration: 20 * time.Minute, CoresPerTask: 1, MemoryMBPerTask: 1024,
	}}
	cfg := DefaultConfig(PolicyHistory)
	cfg.Selector = selector
	cfg.Clustering = clustering
	calmOnly := true
	cfg.Observer = func(now time.Duration, srv *cluster.Server, secondaryCores int) {
		if secondaryCores > 0 && srv.Tenant.ID != 0 {
			calmOnly = false
		}
	}
	sim, err := NewSimulation(cl, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(3 * time.Hour)
	if res.CompletedJobs != 1 {
		t.Fatalf("long job should complete, got %d", res.CompletedJobs)
	}
	if !calmOnly {
		t.Fatalf("long job containers should stay on the calm (constant, low-peak) tenant's servers")
	}
}

func TestHistoryImprovesOnPTUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping loaded YARN-H vs YARN-PT comparison in -short mode")
	}
	profile, ok := trace.ProfileByName("DC-9")
	if !ok {
		t.Fatal("missing DC-9")
	}
	pop, err := trace.NewGenerator(profile.Scaled(0.05), 17).Generate()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	cl.ScaleUtilization(0.45, timeseries.ScaleLinear)
	cat, err := workload.TPCDSLikeCatalogue(rand.New(rand.NewSource(2)), workload.CatalogueConfig{NumQueries: 20})
	if err != nil {
		t.Fatal(err)
	}
	arrCfg := workload.DefaultArrivalConfig(3 * time.Hour)
	arrCfg.MeanInterArrival = 45 * time.Second
	arrCfg.DurationScale = 4
	jobs, err := cat.GenerateArrivals(rand.New(rand.NewSource(3)), arrCfg)
	if err != nil {
		t.Fatal(err)
	}

	run := func(policy Policy) *Result {
		cfg := DefaultConfig(policy)
		cfg.HeartbeatInterval = time.Minute
		cfg.Seed = 11
		if policy == PolicyHistory {
			svc := core.NewClusteringService(core.DefaultClusteringConfig())
			clustering, err := svc.Cluster(pop)
			if err != nil {
				t.Fatal(err)
			}
			selector, err := core.NewSelector(core.DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(4)))
			if err != nil {
				t.Fatal(err)
			}
			cfg.Selector = selector
			cfg.Clustering = clustering
			// Calibrate the short/long cut-offs to the workload and the
			// per-pattern capacity, as the paper does for its testbed (§6.1).
			var lastRuns []time.Duration
			for _, j := range jobs {
				lastRuns = append(lastRuns, j.LastRunDuration)
			}
			cfg.Thresholds = core.CalibrateThresholds(lastRuns,
				core.CapacityByPattern(clustering, core.DefaultSelectorConfig()))
		}
		sim, err := NewSimulation(cl, cloneJobs(jobs), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(5 * time.Hour)
	}

	pt := run(PolicyPT)
	hist := run(PolicyHistory)
	t.Logf("PT: completed=%d avgRuntime=%v kills=%d", pt.CompletedJobs, pt.AvgJobRuntime, pt.TasksKilled)
	t.Logf("H:  completed=%d avgRuntime=%v kills=%d", hist.CompletedJobs, hist.AvgJobRuntime, hist.TasksKilled)
	if pt.CompletedJobs == 0 || hist.CompletedJobs == 0 {
		t.Fatalf("both policies should complete some jobs (pt=%d hist=%d)", pt.CompletedJobs, hist.CompletedJobs)
	}
	// The headline mechanism (§4.1, Fig 13): history-based scheduling avoids
	// servers likely to reclaim resources, so it kills fewer tasks than
	// YARN-PT under the same load while staying competitive on throughput and
	// runtime. The full runtime benefit appears with long tasks (exercised by
	// the Figure 13/14 experiments); this small-cluster test asserts the
	// robust part of the claim.
	if hist.TasksKilled >= pt.TasksKilled {
		t.Fatalf("YARN-H should kill fewer tasks than YARN-PT (H=%d, PT=%d)",
			hist.TasksKilled, pt.TasksKilled)
	}
	if hist.CompletedJobs*4 < pt.CompletedJobs*3 {
		t.Fatalf("YARN-H completed %d jobs, substantially fewer than YARN-PT's %d",
			hist.CompletedJobs, pt.CompletedJobs)
	}
	if float64(hist.AvgJobRuntime) > float64(pt.AvgJobRuntime)*1.5 {
		t.Fatalf("YARN-H average runtime %v should stay within 1.5x of YARN-PT %v",
			hist.AvgJobRuntime, pt.AvgJobRuntime)
	}
}

func cloneJobs(jobs []*workload.Job) []*workload.Job {
	out := make([]*workload.Job, len(jobs))
	for i, j := range jobs {
		cp := *j
		out[i] = &cp
	}
	return out
}

func TestUtilizationAccounting(t *testing.T) {
	cl, _ := testCluster(t)
	jobs := smallJobs(10, time.Minute, time.Minute)
	cfg := DefaultConfig(PolicyPT)
	sim, err := NewSimulation(cl, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(time.Hour)
	if res.AvgPrimaryUtilization <= 0 || res.AvgPrimaryUtilization > 1 {
		t.Fatalf("primary utilization out of range: %v", res.AvgPrimaryUtilization)
	}
	if res.AvgClusterCPUUtilization < res.AvgPrimaryUtilization {
		t.Fatalf("total utilization (%v) should be at least primary (%v)",
			res.AvgClusterCPUUtilization, res.AvgPrimaryUtilization)
	}
	if res.AvgClusterCPUUtilization > 1 {
		t.Fatalf("total utilization should not exceed 1")
	}
}

func TestUnfinishedJobsReported(t *testing.T) {
	cl, _ := testCluster(t)
	// A job that cannot finish within the horizon.
	dag := &workload.DAG{
		Name:   "huge",
		Stages: []*workload.Stage{{Name: "work", Tasks: 4, TaskDuration: 10 * time.Hour}},
	}
	jobs := []*workload.Job{{ID: 0, Name: "huge", DAG: dag, CoresPerTask: 1, MemoryMBPerTask: 1024}}
	sim, err := NewSimulation(cl, jobs, DefaultConfig(PolicyPT))
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(time.Hour)
	if res.CompletedJobs != 0 {
		t.Fatalf("job should not complete")
	}
	if len(res.Jobs) != 1 || res.Jobs[0].Completed {
		t.Fatalf("unfinished job should still be reported")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cl, _ := testCluster(t)
	jobs := smallJobs(10, time.Minute, time.Minute)
	run := func() *Result {
		sim, err := NewSimulation(cl, cloneJobs(jobs), DefaultConfig(PolicyPT))
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(2 * time.Hour)
	}
	a := run()
	b := run()
	if a.AvgJobRuntime != b.AvgJobRuntime || a.TasksKilled != b.TasksKilled {
		t.Fatalf("identical seeds should give identical results")
	}
}
