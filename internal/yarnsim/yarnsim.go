// Package yarnsim models the cluster resource manager and node managers (the
// YARN-H analogue, §5.3) as a discrete-event simulation. It supports three
// policies matching the paper's baselines and system:
//
//   - Stock: unaware of primary tenants; containers are packed onto servers
//     considering only other containers (the YARN-Stock baseline).
//   - PT: primary-tenant aware; each server's free capacity excludes the
//     primary's (rounded-up) usage and the burst reserve, and node managers
//     kill the youngest containers whenever the primary's growth erodes the
//     reserve (the YARN-PT baseline).
//   - History: PT plus smart task scheduling; each job asks the clustering
//     service for the utilization class(es) best matching its length, and its
//     containers are restricted to the servers of those classes (YARN-H/Tez-H).
package yarnsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"harvest/internal/cluster"
	"harvest/internal/core"
	"harvest/internal/simulator"
	"harvest/internal/stats"
	"harvest/internal/tenant"
	"harvest/internal/tezsim"
	"harvest/internal/workload"
)

// Policy selects the scheduler variant.
type Policy int

const (
	// PolicyStock is stock YARN: no primary tenant awareness.
	PolicyStock Policy = iota
	// PolicyPT is primary-tenant-aware YARN without smart scheduling.
	PolicyPT
	// PolicyHistory is YARN-H/Tez-H: primary awareness plus history-based
	// class selection.
	PolicyHistory
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyStock:
		return "YARN-Stock"
	case PolicyPT:
		return "YARN-PT"
	case PolicyHistory:
		return "YARN-H/Tez-H"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	Policy Policy

	// HeartbeatInterval is how often node managers report utilization and the
	// RM re-evaluates allocations and kills. The real NM heartbeats every 3 s;
	// long simulations use coarser intervals.
	HeartbeatInterval time.Duration

	// Thresholds classify jobs into short/medium/long.
	Thresholds core.LengthThresholds

	// Selector drives class selection for PolicyHistory. It must be non-nil
	// for that policy.
	Selector *core.Selector
	// Clustering maps servers to classes for PolicyHistory.
	Clustering *core.Clustering

	// Seed drives all randomized choices (server selection, tie-breaking).
	Seed int64

	// Observer, if non-nil, is called at every heartbeat for every server with
	// the current number of secondary (container) cores allocated there. The
	// latency model uses it to compute primary tail latencies.
	Observer func(now time.Duration, srv *cluster.Server, secondaryCores int)

	// MaxSchedulableTasksPerRound bounds how many containers one scheduling
	// pass may start for a single job, which mirrors the RM handing out
	// containers over several heartbeats. Zero means no bound.
	MaxSchedulableTasksPerRound int
}

// DefaultConfig returns a testbed-like configuration for the given policy.
func DefaultConfig(policy Policy) Config {
	return Config{
		Policy:            policy,
		HeartbeatInterval: 10 * time.Second,
		Thresholds:        core.DefaultLengthThresholds(),
		Seed:              1,
	}
}

// container is a granted container running one task.
type container struct {
	id        int
	jobIndex  int
	task      tezsim.TaskID
	server    tenant.ServerID
	cores     int
	memoryMB  int
	startedAt time.Duration
	// completion is the scheduled completion event's generation; bumped when
	// the container is killed so the stale completion event is ignored.
	generation int
}

// jobRun is the per-job execution state.
type jobRun struct {
	job       *workload.Job
	manager   *tezsim.JobManager
	selection core.Selection
	// allowedServers restricts container placement for PolicyHistory; nil
	// means any server.
	allowedServers map[tenant.ServerID]bool
	arrived        time.Duration
	finished       bool
	finishedAt     time.Duration
	// index is the job's position in Simulation.jobs, so containers can refer
	// back to their job without a linear search.
	index int
}

// serverState augments a cluster server with its secondary allocations.
type serverState struct {
	srv        *cluster.Server
	allocCores int
	allocMemMB int
	containers []*container // ordered by start time (oldest first)
	classID    core.ClassID
	hasClass   bool

	// Per-tick cache of the primary tenant's utilization and (rounded-up)
	// cores. Every heartbeat consults these values several times per server
	// (reserve enforcement, free-resource scans, utilization sampling, class
	// usage); sampling the time series once per simulated instant and reusing
	// the result is what makes heartbeats allocation- and lookup-free. The
	// cache is keyed by the engine clock: cacheAt != now means stale.
	cacheAt      time.Duration
	primaryUtil  float64
	primaryCores int
}

// JobResult summarizes one job's execution.
type JobResult struct {
	JobID  int
	Name   string
	Type   core.JobType
	Arrive time.Duration
	Start  time.Duration
	Finish time.Duration
	// Runtime is Finish - Arrive: the job execution time as the user sees it,
	// including any queueing delay (the metric of Figures 11, 13 and 14).
	Runtime     time.Duration
	TasksKilled int
	Completed   bool
}

// Result aggregates a simulation run.
type Result struct {
	Policy        Policy
	Jobs          []JobResult
	CompletedJobs int
	// AvgJobRuntime averages the runtime of completed jobs.
	AvgJobRuntime time.Duration
	// TasksKilled is the total number of task executions killed.
	TasksKilled int
	// AvgClusterCPUUtilization is the time-averaged total (primary plus
	// secondary) CPU utilization across servers.
	AvgClusterCPUUtilization float64
	// AvgPrimaryUtilization is the time-averaged primary-only utilization.
	AvgPrimaryUtilization float64
}

// Simulation is one configured run over a cluster and a workload.
type Simulation struct {
	cfg     Config
	cluster *cluster.Cluster
	jobs    []*jobRun
	engine  *simulator.Engine
	rng     *rand.Rand

	servers     map[tenant.ServerID]*serverState
	serverOrder []*serverState

	nextContainerID int
	totalKills      int

	utilSamples  int
	utilAccum    float64
	primaryAccum float64
	pendingJobs  []*jobRun // jobs waiting for a class selection (PolicyHistory)

	// classAlloc tracks, per class, the cores currently allocated to
	// containers. It is maintained incrementally on container start/stop so
	// classUsage never has to re-scan the servers for allocations.
	classAlloc map[core.ClassID]float64
	// classPrimary caches the per-class primary-utilization sums for one
	// simulated instant (classPrimaryAt); rebuilding it is O(servers), so the
	// heartbeat reuses it across every class selection in the same tick.
	classPrimary      map[core.ClassID]classPrimaryStat
	classPrimaryAt    time.Duration
	classPrimaryValid bool
	// usageScratch is the map handed to the selector, rebuilt in place.
	usageScratch map[core.ClassID]core.ClassUsage

	// candScratch/weightScratch/runnableScratch are the scheduling pass's
	// buffers, reused across calls so steady-state scheduling allocates
	// nothing.
	candScratch     []schedCandidate
	weightScratch   []float64
	runnableScratch []tezsim.TaskID
}

// classPrimaryStat accumulates a class's primary utilization for one tick.
type classPrimaryStat struct {
	util    float64
	servers int
}

// schedCandidate is one server eligible for the current scheduling pass.
type schedCandidate struct {
	st   *serverState
	free int
}

// NewSimulation prepares a run. The jobs slice must be sorted by arrival time
// (GenerateArrivals produces it that way).
func NewSimulation(cl *cluster.Cluster, jobs []*workload.Job, cfg Config) (*Simulation, error) {
	if cl == nil || cl.NumServers() == 0 {
		return nil, fmt.Errorf("yarnsim: empty cluster")
	}
	if cfg.HeartbeatInterval <= 0 {
		return nil, fmt.Errorf("yarnsim: heartbeat interval must be positive")
	}
	if cfg.Policy == PolicyHistory && (cfg.Selector == nil || cfg.Clustering == nil) {
		return nil, fmt.Errorf("yarnsim: PolicyHistory needs a selector and clustering")
	}
	s := &Simulation{
		cfg:     cfg,
		cluster: cl,
		engine:  simulator.New(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		servers: make(map[tenant.ServerID]*serverState, cl.NumServers()),
	}
	if cfg.Clustering != nil {
		s.classAlloc = make(map[core.ClassID]float64)
		s.classPrimary = make(map[core.ClassID]classPrimaryStat)
		s.usageScratch = make(map[core.ClassID]core.ClassUsage)
	}
	for _, srv := range cl.ServerList() {
		st := &serverState{srv: srv, cacheAt: -1}
		if cfg.Clustering != nil {
			if cid, ok := cfg.Clustering.ClassOfServer(srv.ID); ok {
				st.classID = cid
				st.hasClass = true
			}
		}
		s.servers[srv.ID] = st
		s.serverOrder = append(s.serverOrder, st)
	}
	for _, j := range jobs {
		m, err := tezsim.NewJobManager(j)
		if err != nil {
			return nil, fmt.Errorf("yarnsim: job %d: %w", j.ID, err)
		}
		s.jobs = append(s.jobs, &jobRun{job: j, manager: m, arrived: j.Arrive})
	}
	sort.SliceStable(s.jobs, func(i, j int) bool { return s.jobs[i].arrived < s.jobs[j].arrived })
	for i, jr := range s.jobs {
		jr.index = i
	}
	return s, nil
}

// primary returns the server's primary utilization fraction and rounded-up
// core count at the given time, sampling the time series at most once per
// server per simulated instant.
func (s *Simulation) primary(st *serverState, now time.Duration) (float64, int) {
	if st.cacheAt != now {
		u := st.srv.PrimaryUtilization(now)
		st.cacheAt = now
		st.primaryUtil = u
		st.primaryCores = st.srv.CoresForUtilization(u)
	}
	return st.primaryUtil, st.primaryCores
}

// Run executes the simulation until the horizon and returns the results.
// Jobs still running at the horizon are reported as not completed.
func (s *Simulation) Run(horizon time.Duration) *Result {
	// Job arrivals.
	for _, jr := range s.jobs {
		jr := jr
		_ = s.engine.Schedule(jr.arrived, func(now time.Duration) {
			s.onJobArrival(jr, now)
		})
	}
	// Heartbeats: primary awareness (kills), class usage refresh, scheduling.
	s.engine.Every(s.cfg.HeartbeatInterval, horizon, func(now time.Duration) bool {
		s.onHeartbeat(now)
		return true
	})
	s.engine.Run(horizon)
	return s.collect(horizon)
}

// Heartbeat runs one NM/RM heartbeat exchange at the given simulation time
// without going through the event engine: reserve enforcement, pending class
// selections, scheduling, and utilization sampling. It exists so benchmarks
// can measure the per-tick cost in isolation. It deliberately does not drain
// the internal event queue, so container completions scheduled by the
// heartbeat never fire — full simulations must use Run, which drives
// heartbeats and completions together.
func (s *Simulation) Heartbeat(now time.Duration) { s.onHeartbeat(now) }

func (s *Simulation) onJobArrival(jr *jobRun, now time.Duration) {
	if s.cfg.Policy == PolicyHistory {
		if !s.trySelectClasses(jr, now) {
			// No class has enough headroom right now; retry at heartbeats.
			s.pendingJobs = append(s.pendingJobs, jr)
			return
		}
	}
	s.scheduleJob(jr, now)
}

// trySelectClasses runs Algorithm 1 for the job and pins its allowed servers.
func (s *Simulation) trySelectClasses(jr *jobRun, now time.Duration) bool {
	usage := s.classUsage(now)
	req := jr.manager.Request(s.cfg.Thresholds)
	sel := s.cfg.Selector.Select(req, usage)
	if sel.Empty() {
		return false
	}
	jr.selection = sel
	jr.allowedServers = make(map[tenant.ServerID]bool)
	for _, cid := range sel.Classes {
		cls := s.cfg.Clustering.Class(cid)
		if cls == nil {
			continue
		}
		for _, sid := range cls.Servers {
			jr.allowedServers[sid] = true
		}
	}
	return true
}

// classUsage summarizes, per class, the current primary utilization and the
// cores already allocated to containers — the information NM heartbeats give
// the RM and the clustering service. The primary-utilization sums are cached
// per tick (they depend only on the engine clock) and the allocations come
// from the incrementally maintained classAlloc, so repeated class selections
// within one heartbeat cost O(classes), not O(servers). The returned map is
// scratch state valid until the next call; callers must not retain it.
func (s *Simulation) classUsage(now time.Duration) map[core.ClassID]core.ClassUsage {
	if s.cfg.Clustering == nil {
		return nil
	}
	if !s.classPrimaryValid || s.classPrimaryAt != now {
		clear(s.classPrimary)
		for _, st := range s.serverOrder {
			if !st.hasClass {
				continue
			}
			util, _ := s.primary(st, now)
			ps := s.classPrimary[st.classID]
			ps.util += util
			ps.servers++
			s.classPrimary[st.classID] = ps
		}
		s.classPrimaryAt = now
		s.classPrimaryValid = true
	}
	clear(s.usageScratch)
	for cid, ps := range s.classPrimary {
		usage := core.ClassUsage{AllocatedCores: s.classAlloc[cid]}
		if ps.servers > 0 {
			usage.CurrentUtilization = ps.util / float64(ps.servers)
		}
		s.usageScratch[cid] = usage
	}
	return s.usageScratch
}

// freeCores returns how many cores are available for new containers on the
// server under the configured policy.
func (s *Simulation) freeCores(st *serverState, now time.Duration) int {
	capacity := st.srv.Resources.Cores
	switch s.cfg.Policy {
	case PolicyStock:
		return capacity - st.allocCores
	default:
		_, primaryCores := s.primary(st, now)
		free := capacity - primaryCores - st.srv.Reserve.Cores - st.allocCores
		if free < 0 {
			return 0
		}
		return free
	}
}

// freeMemoryMB mirrors freeCores for memory.
func (s *Simulation) freeMemoryMB(st *serverState, now time.Duration) int {
	capacity := st.srv.Resources.MemoryMB
	switch s.cfg.Policy {
	case PolicyStock:
		return capacity - st.allocMemMB
	default:
		util, _ := s.primary(st, now)
		primary := int(util * float64(capacity))
		free := capacity - primary - st.srv.Reserve.MemoryMB - st.allocMemMB
		if free < 0 {
			return 0
		}
		return free
	}
}

// scheduleJob tries to start as many of the job's runnable tasks as possible.
func (s *Simulation) scheduleJob(jr *jobRun, now time.Duration) {
	if jr.finished {
		return
	}
	limit := s.cfg.MaxSchedulableTasksPerRound
	if limit <= 0 {
		limit = -1
	}
	runnable := jr.manager.AppendRunnableTasks(s.runnableScratch[:0], limit)
	s.runnableScratch = runnable
	if len(runnable) == 0 {
		return
	}
	// Candidate servers with free resources (and matching label for History),
	// gathered into the simulation's reusable scratch buffers.
	candidates := s.candScratch[:0]
	weights := s.weightScratch[:0]
	for _, st := range s.serverOrder {
		if jr.allowedServers != nil && !jr.allowedServers[st.srv.ID] {
			continue
		}
		free := s.freeCores(st, now)
		if free <= 0 {
			continue
		}
		if s.freeMemoryMB(st, now) < jr.job.MemoryMBPerTask {
			continue
		}
		candidates = append(candidates, schedCandidate{st: st, free: free})
		weights = append(weights, float64(free))
	}
	// Hand the (possibly re-grown) buffers back for the next pass; scheduleJob
	// never re-enters itself, so the aliasing is safe.
	s.candScratch = candidates
	s.weightScratch = weights
	if len(candidates) == 0 {
		return
	}
	for _, task := range runnable {
		// The RM picks a destination with probability proportional to the
		// server's available resources (§5.3).
		idx := stats.WeightedChoice(s.rng, weights)
		if idx < 0 {
			break
		}
		cand := &candidates[idx]
		s.startContainer(jr, task, cand.st, now)
		cand.free -= jr.job.CoresPerTask
		if cand.free <= 0 ||
			s.freeMemoryMB(cand.st, now) < jr.job.MemoryMBPerTask {
			weights[idx] = 0
		} else {
			weights[idx] = float64(cand.free)
		}
	}
}

func (s *Simulation) startContainer(jr *jobRun, task tezsim.TaskID, st *serverState, now time.Duration) {
	if err := jr.manager.TaskStarted(task, now); err != nil {
		// The task became unrunnable (e.g. already started elsewhere); skip.
		return
	}
	c := &container{
		id:        s.nextContainerID,
		jobIndex:  jr.index,
		task:      task,
		server:    st.srv.ID,
		cores:     jr.job.CoresPerTask,
		memoryMB:  jr.job.MemoryMBPerTask,
		startedAt: now,
	}
	s.nextContainerID++
	st.allocCores += c.cores
	st.allocMemMB += c.memoryMB
	if st.hasClass {
		s.classAlloc[st.classID] += float64(c.cores)
	}
	st.containers = append(st.containers, c)

	duration, err := jr.manager.TaskDuration(task)
	if err != nil {
		duration = time.Second
	}
	generation := c.generation
	s.engine.ScheduleAfter(duration, func(done time.Duration) {
		s.onContainerFinish(jr, c, st, generation, done)
	})
}

func (s *Simulation) onContainerFinish(jr *jobRun, c *container, st *serverState, generation int, now time.Duration) {
	if c.generation != generation {
		return // the container was killed before completing
	}
	s.removeContainer(st, c)
	if err := jr.manager.TaskCompleted(c.task, now); err != nil {
		return
	}
	if jr.manager.Done() && !jr.finished {
		jr.finished = true
		jr.finishedAt = now
	} else {
		// Newly unblocked tasks may be schedulable immediately.
		s.scheduleJob(jr, now)
	}
}

func (s *Simulation) removeContainer(st *serverState, c *container) {
	st.allocCores -= c.cores
	st.allocMemMB -= c.memoryMB
	if st.hasClass {
		s.classAlloc[st.classID] -= float64(c.cores)
	}
	for i, other := range st.containers {
		if other == c {
			st.containers = append(st.containers[:i], st.containers[i+1:]...)
			break
		}
	}
}

// onHeartbeat is the periodic NM/RM exchange: enforce the reserve (killing
// youngest containers first), retry pending class selections, schedule
// waiting work, and sample utilization.
func (s *Simulation) onHeartbeat(now time.Duration) {
	if s.cfg.Policy != PolicyStock {
		s.enforceReserve(now)
	}
	// Retry jobs waiting for a class selection, compacting the queue in place.
	if len(s.pendingJobs) > 0 {
		still := s.pendingJobs[:0]
		for _, jr := range s.pendingJobs {
			if s.trySelectClasses(jr, now) {
				s.scheduleJob(jr, now)
			} else {
				still = append(still, jr)
			}
		}
		// Drop stale tail pointers so finished jobs can be collected.
		for i := len(still); i < len(s.pendingJobs); i++ {
			s.pendingJobs[i] = nil
		}
		s.pendingJobs = still
	}
	// Give every unfinished, arrived job a scheduling opportunity.
	for _, jr := range s.jobs {
		if jr.arrived > now || jr.finished {
			continue
		}
		if s.cfg.Policy == PolicyHistory && jr.allowedServers == nil {
			continue // still waiting for a selection
		}
		s.scheduleJob(jr, now)
	}
	// Utilization accounting and observer callbacks.
	s.sampleUtilization(now)
}

// enforceReserve kills the youngest containers on servers where the primary's
// current usage plus allocations exceed capacity minus the reserve (§5.3).
func (s *Simulation) enforceReserve(now time.Duration) {
	for _, st := range s.serverOrder {
		capacity := st.srv.Resources.Cores
		_, primary := s.primary(st, now)
		budget := capacity - primary - st.srv.Reserve.Cores
		if budget < 0 {
			budget = 0
		}
		for st.allocCores > budget && len(st.containers) > 0 {
			// Kill the youngest container (last started).
			youngest := st.containers[len(st.containers)-1]
			for _, c := range st.containers {
				if c.startedAt > youngest.startedAt {
					youngest = c
				}
			}
			s.killContainer(youngest, st)
		}
	}
}

func (s *Simulation) killContainer(c *container, st *serverState) {
	c.generation++ // invalidate the scheduled completion
	s.removeContainer(st, c)
	s.totalKills++
	if c.jobIndex >= 0 && c.jobIndex < len(s.jobs) {
		jr := s.jobs[c.jobIndex]
		if err := jr.manager.TaskKilled(c.task); err == nil {
			// The task will be rescheduled on a later heartbeat.
			_ = jr
		}
	}
}

func (s *Simulation) sampleUtilization(now time.Duration) {
	totalUtil := 0.0
	primaryUtil := 0.0
	for _, st := range s.serverOrder {
		p, _ := s.primary(st, now)
		secondary := float64(st.allocCores) / float64(st.srv.Resources.Cores)
		u := p + secondary
		if u > 1 {
			u = 1
		}
		totalUtil += u
		primaryUtil += p
		if s.cfg.Observer != nil {
			s.cfg.Observer(now, st.srv, st.allocCores)
		}
	}
	n := float64(len(s.serverOrder))
	s.utilAccum += totalUtil / n
	s.primaryAccum += primaryUtil / n
	s.utilSamples++
}

func (s *Simulation) collect(horizon time.Duration) *Result {
	res := &Result{Policy: s.cfg.Policy}
	var runtimeSum time.Duration
	for _, jr := range s.jobs {
		if jr.arrived > horizon {
			continue
		}
		started, startAt := jr.manager.Started()
		jres := JobResult{
			JobID:       jr.job.ID,
			Name:        jr.job.Name,
			Type:        jr.manager.JobType(s.cfg.Thresholds),
			Arrive:      jr.arrived,
			TasksKilled: jr.manager.TasksKilled(),
			Completed:   jr.finished,
		}
		if started {
			jres.Start = startAt
		}
		if jr.finished {
			jres.Finish = jr.finishedAt
			jres.Runtime = jr.finishedAt - jr.arrived
			runtimeSum += jres.Runtime
			res.CompletedJobs++
		}
		res.Jobs = append(res.Jobs, jres)
	}
	if res.CompletedJobs > 0 {
		res.AvgJobRuntime = runtimeSum / time.Duration(res.CompletedJobs)
	}
	res.TasksKilled = s.totalKills
	if s.utilSamples > 0 {
		res.AvgClusterCPUUtilization = s.utilAccum / float64(s.utilSamples)
		res.AvgPrimaryUtilization = s.primaryAccum / float64(s.utilSamples)
	}
	return res
}
