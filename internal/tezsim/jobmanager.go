// Package tezsim models the per-job application master (the Tez-H analogue,
// §5.3): it tracks the job's DAG execution state, decides which tasks are
// runnable, estimates the maximum concurrent resource requirement, classifies
// the job's length from its previous run, and re-queues tasks killed by the
// node managers.
package tezsim

import (
	"fmt"
	"time"

	"harvest/internal/core"
	"harvest/internal/workload"
)

// TaskState is the lifecycle state of one task.
type TaskState int

const (
	// TaskPending means the task has not started (or was killed and must
	// re-run).
	TaskPending TaskState = iota
	// TaskRunning means the task holds a container.
	TaskRunning
	// TaskCompleted means the task finished successfully.
	TaskCompleted
)

// TaskID identifies a task within a job: its stage index and its index within
// the stage.
type TaskID struct {
	Stage int
	Index int
}

// String implements fmt.Stringer.
func (t TaskID) String() string { return fmt.Sprintf("s%d/t%d", t.Stage, t.Index) }

// JobManager drives one job's execution.
type JobManager struct {
	Job *workload.Job

	state          [][]TaskState
	stageCompleted []int
	stageRunning   []int

	runningTasks   int
	completedTasks int
	totalTasks     int
	killed         int

	started  bool
	startAt  time.Duration
	finished bool
	finishAt time.Duration
}

// NewJobManager validates the job's DAG and prepares the execution state.
func NewJobManager(job *workload.Job) (*JobManager, error) {
	if job == nil || job.DAG == nil {
		return nil, fmt.Errorf("tezsim: nil job or DAG")
	}
	if err := job.DAG.Validate(); err != nil {
		return nil, fmt.Errorf("tezsim: %w", err)
	}
	m := &JobManager{Job: job}
	m.state = make([][]TaskState, len(job.DAG.Stages))
	m.stageCompleted = make([]int, len(job.DAG.Stages))
	m.stageRunning = make([]int, len(job.DAG.Stages))
	for i, s := range job.DAG.Stages {
		m.state[i] = make([]TaskState, s.Tasks)
		m.totalTasks += s.Tasks
	}
	return m, nil
}

// JobType classifies the job's length from its previous execution time.
func (m *JobManager) JobType(th core.LengthThresholds) core.JobType {
	return core.ClassifyLength(m.Job.LastRunDuration, th)
}

// Request builds the resource request Algorithm 1 evaluates: the job type and
// the maximum concurrent core demand from the DAG's breadth-first traversal.
func (m *JobManager) Request(th core.LengthThresholds) core.JobRequest {
	return core.JobRequest{
		Type:               m.JobType(th),
		MaxConcurrentCores: m.Job.MaxConcurrentCores(),
	}
}

// stageReady reports whether all dependencies of the stage have completed.
func (m *JobManager) stageReady(stage int) bool {
	for _, dep := range m.Job.DAG.Stages[stage].Deps {
		if m.stageCompleted[dep] < m.Job.DAG.Stages[dep].Tasks {
			return false
		}
	}
	return true
}

// RunnableTasks returns up to limit tasks that could start now: their stage's
// dependencies are complete and they are pending. A negative limit means no
// limit.
func (m *JobManager) RunnableTasks(limit int) []TaskID {
	return m.AppendRunnableTasks(nil, limit)
}

// AppendRunnableTasks appends up to limit runnable tasks to dst and returns
// the extended slice, so schedulers polling every heartbeat can reuse one
// buffer instead of allocating a fresh slice per job per tick. A negative
// limit means no limit.
func (m *JobManager) AppendRunnableTasks(dst []TaskID, limit int) []TaskID {
	start := len(dst)
	for si, stage := range m.Job.DAG.Stages {
		if m.stageCompleted[si] == stage.Tasks {
			continue
		}
		if !m.stageReady(si) {
			continue
		}
		for ti := 0; ti < stage.Tasks; ti++ {
			if m.state[si][ti] != TaskPending {
				continue
			}
			dst = append(dst, TaskID{Stage: si, Index: ti})
			if limit >= 0 && len(dst)-start >= limit {
				return dst
			}
		}
	}
	return dst
}

// PendingRunnableCount returns how many tasks are runnable right now.
func (m *JobManager) PendingRunnableCount() int {
	return len(m.RunnableTasks(-1))
}

// TaskDuration returns the nominal duration of a task.
func (m *JobManager) TaskDuration(id TaskID) (time.Duration, error) {
	if err := m.checkID(id); err != nil {
		return 0, err
	}
	return m.Job.DAG.Stages[id.Stage].TaskDuration, nil
}

func (m *JobManager) checkID(id TaskID) error {
	if id.Stage < 0 || id.Stage >= len(m.state) {
		return fmt.Errorf("tezsim: stage %d out of range", id.Stage)
	}
	if id.Index < 0 || id.Index >= len(m.state[id.Stage]) {
		return fmt.Errorf("tezsim: task %v out of range", id)
	}
	return nil
}

// TaskStarted records that a container started running the task.
func (m *JobManager) TaskStarted(id TaskID, now time.Duration) error {
	if err := m.checkID(id); err != nil {
		return err
	}
	if m.state[id.Stage][id.Index] != TaskPending {
		return fmt.Errorf("tezsim: task %v is not pending", id)
	}
	if !m.stageReady(id.Stage) {
		return fmt.Errorf("tezsim: stage %d dependencies incomplete", id.Stage)
	}
	m.state[id.Stage][id.Index] = TaskRunning
	m.stageRunning[id.Stage]++
	m.runningTasks++
	if !m.started {
		m.started = true
		m.startAt = now
	}
	return nil
}

// TaskCompleted records a task finishing successfully.
func (m *JobManager) TaskCompleted(id TaskID, now time.Duration) error {
	if err := m.checkID(id); err != nil {
		return err
	}
	if m.state[id.Stage][id.Index] != TaskRunning {
		return fmt.Errorf("tezsim: task %v is not running", id)
	}
	m.state[id.Stage][id.Index] = TaskCompleted
	m.stageRunning[id.Stage]--
	m.stageCompleted[id.Stage]++
	m.runningTasks--
	m.completedTasks++
	if m.completedTasks == m.totalTasks {
		m.finished = true
		m.finishAt = now
	}
	return nil
}

// TaskKilled records a running task being killed by a node manager (to
// replenish the primary's reserve). The task returns to pending and will be
// re-run from scratch, as the AM does in the real system.
func (m *JobManager) TaskKilled(id TaskID) error {
	if err := m.checkID(id); err != nil {
		return err
	}
	if m.state[id.Stage][id.Index] != TaskRunning {
		return fmt.Errorf("tezsim: task %v is not running", id)
	}
	m.state[id.Stage][id.Index] = TaskPending
	m.stageRunning[id.Stage]--
	m.runningTasks--
	m.killed++
	return nil
}

// Done reports whether every task has completed.
func (m *JobManager) Done() bool { return m.finished }

// Started reports whether any task has started, and when.
func (m *JobManager) Started() (bool, time.Duration) { return m.started, m.startAt }

// Finished returns the completion time; valid only when Done is true.
func (m *JobManager) Finished() time.Duration { return m.finishAt }

// Progress returns completed and total task counts.
func (m *JobManager) Progress() (completed, total int) { return m.completedTasks, m.totalTasks }

// RunningTasks returns how many tasks currently hold containers.
func (m *JobManager) RunningTasks() int { return m.runningTasks }

// TasksKilled returns how many task executions were killed so far.
func (m *JobManager) TasksKilled() int { return m.killed }
