package tezsim

import (
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/workload"
)

func simpleJob() *workload.Job {
	dag := &workload.DAG{
		Name: "simple",
		Stages: []*workload.Stage{
			{Name: "map", Tasks: 3, TaskDuration: 10 * time.Second},
			{Name: "reduce", Tasks: 2, TaskDuration: 20 * time.Second, Deps: []int{0}},
		},
	}
	return &workload.Job{ID: 1, Name: "simple", DAG: dag, CoresPerTask: 1, MemoryMBPerTask: 1024,
		LastRunDuration: 100 * time.Second}
}

func TestNewJobManagerValidation(t *testing.T) {
	if _, err := NewJobManager(nil); err == nil {
		t.Errorf("nil job should error")
	}
	bad := &workload.Job{DAG: &workload.DAG{Name: "empty"}}
	if _, err := NewJobManager(bad); err == nil {
		t.Errorf("invalid DAG should error")
	}
}

func TestJobTypeAndRequest(t *testing.T) {
	m, err := NewJobManager(simpleJob())
	if err != nil {
		t.Fatal(err)
	}
	th := core.DefaultLengthThresholds()
	if m.JobType(th) != core.JobShort {
		t.Fatalf("100s job should be short")
	}
	req := m.Request(th)
	if req.Type != core.JobShort || req.MaxConcurrentCores != 3 {
		t.Fatalf("request = %+v", req)
	}
}

func TestRunnableRespectsDependencies(t *testing.T) {
	m, err := NewJobManager(simpleJob())
	if err != nil {
		t.Fatal(err)
	}
	runnable := m.RunnableTasks(-1)
	if len(runnable) != 3 {
		t.Fatalf("initially runnable = %d, want 3 (map tasks only)", len(runnable))
	}
	for _, id := range runnable {
		if id.Stage != 0 {
			t.Fatalf("reduce tasks must not be runnable before maps finish")
		}
	}
	// Limit handling.
	if got := m.RunnableTasks(2); len(got) != 2 {
		t.Fatalf("limit 2 returned %d", len(got))
	}
	if got := m.PendingRunnableCount(); got != 3 {
		t.Fatalf("PendingRunnableCount = %d", got)
	}
}

func TestFullLifecycle(t *testing.T) {
	m, err := NewJobManager(simpleJob())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	// Run the three map tasks.
	for _, id := range m.RunnableTasks(-1) {
		if err := m.TaskStarted(id, now); err != nil {
			t.Fatal(err)
		}
	}
	if started, at := m.Started(); !started || at != 0 {
		t.Fatalf("job should have started at 0")
	}
	if m.RunningTasks() != 3 {
		t.Fatalf("RunningTasks = %d", m.RunningTasks())
	}
	// Reduce still not runnable.
	if len(m.RunnableTasks(-1)) != 0 {
		t.Fatalf("nothing should be runnable while maps run")
	}
	now = 10 * time.Second
	for i := 0; i < 3; i++ {
		if err := m.TaskCompleted(TaskID{Stage: 0, Index: i}, now); err != nil {
			t.Fatal(err)
		}
	}
	runnable := m.RunnableTasks(-1)
	if len(runnable) != 2 {
		t.Fatalf("reduce tasks should now be runnable, got %d", len(runnable))
	}
	for _, id := range runnable {
		if err := m.TaskStarted(id, now); err != nil {
			t.Fatal(err)
		}
	}
	now = 30 * time.Second
	for i := 0; i < 2; i++ {
		if err := m.TaskCompleted(TaskID{Stage: 1, Index: i}, now); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Done() {
		t.Fatalf("job should be done")
	}
	if m.Finished() != 30*time.Second {
		t.Fatalf("finish time = %v", m.Finished())
	}
	completed, total := m.Progress()
	if completed != 5 || total != 5 {
		t.Fatalf("progress = %d/%d", completed, total)
	}
}

func TestTaskKilledRequeues(t *testing.T) {
	m, err := NewJobManager(simpleJob())
	if err != nil {
		t.Fatal(err)
	}
	id := TaskID{Stage: 0, Index: 0}
	if err := m.TaskStarted(id, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.TaskKilled(id); err != nil {
		t.Fatal(err)
	}
	if m.TasksKilled() != 1 {
		t.Fatalf("TasksKilled = %d", m.TasksKilled())
	}
	if m.RunningTasks() != 0 {
		t.Fatalf("RunningTasks should drop back to 0")
	}
	// The killed task must be runnable again.
	found := false
	for _, r := range m.RunnableTasks(-1) {
		if r == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("killed task should be pending again")
	}
	// And it can complete on its second attempt.
	if err := m.TaskStarted(id, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.TaskCompleted(id, 11*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidTransitions(t *testing.T) {
	m, err := NewJobManager(simpleJob())
	if err != nil {
		t.Fatal(err)
	}
	bad := TaskID{Stage: 9, Index: 0}
	if err := m.TaskStarted(bad, 0); err == nil {
		t.Errorf("out-of-range stage should error")
	}
	if err := m.TaskCompleted(TaskID{Stage: 0, Index: 99}, 0); err == nil {
		t.Errorf("out-of-range index should error")
	}
	if _, err := m.TaskDuration(bad); err == nil {
		t.Errorf("out-of-range duration lookup should error")
	}
	// Completing a task that never started.
	if err := m.TaskCompleted(TaskID{Stage: 0, Index: 0}, 0); err == nil {
		t.Errorf("completing a pending task should error")
	}
	// Killing a pending task.
	if err := m.TaskKilled(TaskID{Stage: 0, Index: 0}); err == nil {
		t.Errorf("killing a pending task should error")
	}
	// Starting a reduce before maps complete.
	if err := m.TaskStarted(TaskID{Stage: 1, Index: 0}, 0); err == nil {
		t.Errorf("starting a blocked task should error")
	}
	// Double start.
	if err := m.TaskStarted(TaskID{Stage: 0, Index: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.TaskStarted(TaskID{Stage: 0, Index: 0}, 0); err == nil {
		t.Errorf("double start should error")
	}
}

func TestTaskDurationLookup(t *testing.T) {
	m, err := NewJobManager(simpleJob())
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.TaskDuration(TaskID{Stage: 1, Index: 0})
	if err != nil || d != 20*time.Second {
		t.Fatalf("duration = %v, %v", d, err)
	}
}

func TestQuery19Lifecycle(t *testing.T) {
	job := &workload.Job{ID: 2, Name: "query19", DAG: workload.Query19(), CoresPerTask: 1,
		LastRunDuration: 600 * time.Second}
	m, err := NewJobManager(job)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobType(core.DefaultLengthThresholds()) != core.JobLong {
		t.Fatalf("600s job should be long")
	}
	// Drive the whole DAG to completion greedily.
	now := time.Duration(0)
	for !m.Done() {
		runnable := m.RunnableTasks(-1)
		if len(runnable) == 0 && m.RunningTasks() == 0 {
			t.Fatalf("deadlock: nothing runnable and nothing running")
		}
		for _, id := range runnable {
			if err := m.TaskStarted(id, now); err != nil {
				t.Fatal(err)
			}
		}
		now += time.Minute
		for _, id := range runnable {
			if err := m.TaskCompleted(id, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	completed, total := m.Progress()
	if completed != total || total != workload.Query19().TotalTasks() {
		t.Fatalf("progress %d/%d", completed, total)
	}
}

func TestTaskIDString(t *testing.T) {
	if (TaskID{Stage: 2, Index: 7}).String() != "s2/t7" {
		t.Errorf("unexpected TaskID string")
	}
}
