package simulator

import (
	"testing"
	"time"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := New()
	var order []int
	_ = e.Schedule(3*time.Second, func(time.Duration) { order = append(order, 3) })
	_ = e.Schedule(1*time.Second, func(time.Duration) { order = append(order, 1) })
	_ = e.Schedule(2*time.Second, func(time.Duration) { order = append(order, 2) })
	n := e.Run(10 * time.Second)
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("clock should end at the horizon, got %v", e.Now())
	}
}

func TestEqualTimeEventsRunInScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		_ = e.Schedule(time.Second, func(time.Duration) { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of order: %v", order)
		}
	}
}

func TestSchedulePastEvent(t *testing.T) {
	e := New()
	_ = e.Schedule(5*time.Second, func(time.Duration) {})
	e.RunAll()
	if err := e.Schedule(time.Second, func(time.Duration) {}); err != ErrPastEvent {
		t.Fatalf("expected ErrPastEvent, got %v", err)
	}
}

func TestScheduleAfterClampsNegative(t *testing.T) {
	e := New()
	ran := false
	e.ScheduleAfter(-time.Second, func(now time.Duration) {
		ran = true
		if now != 0 {
			t.Errorf("negative delay should run now, got %v", now)
		}
	})
	e.RunAll()
	if !ran {
		t.Fatalf("event did not run")
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	e := New()
	ran := 0
	_ = e.Schedule(time.Second, func(time.Duration) { ran++ })
	_ = e.Schedule(time.Hour, func(time.Duration) { ran++ })
	n := e.Run(time.Minute)
	if n != 1 || ran != 1 {
		t.Fatalf("expected only the first event to run, got n=%d ran=%d", n, ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("one event should remain pending, got %d", e.Pending())
	}
	if e.Now() != time.Minute {
		t.Fatalf("clock should stop at the horizon, got %v", e.Now())
	}
}

func TestStepAdvancesClock(t *testing.T) {
	e := New()
	_ = e.Schedule(7*time.Second, func(time.Duration) {})
	if !e.Step() {
		t.Fatalf("expected an event to run")
	}
	if e.Now() != 7*time.Second {
		t.Fatalf("clock = %v, want 7s", e.Now())
	}
	if e.Step() {
		t.Fatalf("no events should remain")
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New()
	var times []time.Duration
	_ = e.Schedule(time.Second, func(now time.Duration) {
		times = append(times, now)
		e.ScheduleAfter(2*time.Second, func(now time.Duration) {
			times = append(times, now)
		})
	})
	e.Run(time.Minute)
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Fatalf("times = %v", times)
	}
	if e.Processed() != 2 {
		t.Fatalf("processed = %d, want 2", e.Processed())
	}
}

func TestEvery(t *testing.T) {
	e := New()
	count := 0
	e.Every(time.Minute, 10*time.Minute, func(time.Duration) bool {
		count++
		return true
	})
	e.Run(10 * time.Minute)
	if count != 10 {
		t.Fatalf("periodic event ran %d times, want 10", count)
	}
}

func TestEveryStopsWhenPredicateFalse(t *testing.T) {
	e := New()
	count := 0
	e.Every(time.Minute, time.Hour, func(time.Duration) bool {
		count++
		return count < 3
	})
	e.Run(time.Hour)
	if count != 3 {
		t.Fatalf("periodic event ran %d times, want 3", count)
	}
}

func TestEveryInvalidPeriodOrHorizon(t *testing.T) {
	e := New()
	e.Every(0, time.Hour, func(time.Duration) bool { t.Fatal("should not run"); return true })
	e.Every(time.Hour, time.Minute, func(time.Duration) bool { t.Fatal("should not run"); return true })
	e.RunAll()
}
