package simulator

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := New()
	var order []int
	_ = e.Schedule(3*time.Second, func(time.Duration) { order = append(order, 3) })
	_ = e.Schedule(1*time.Second, func(time.Duration) { order = append(order, 1) })
	_ = e.Schedule(2*time.Second, func(time.Duration) { order = append(order, 2) })
	n := e.Run(10 * time.Second)
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("clock should end at the horizon, got %v", e.Now())
	}
}

func TestEqualTimeEventsRunInScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		_ = e.Schedule(time.Second, func(time.Duration) { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of order: %v", order)
		}
	}
}

func TestSchedulePastEvent(t *testing.T) {
	e := New()
	_ = e.Schedule(5*time.Second, func(time.Duration) {})
	e.RunAll()
	if err := e.Schedule(time.Second, func(time.Duration) {}); err != ErrPastEvent {
		t.Fatalf("expected ErrPastEvent, got %v", err)
	}
}

func TestScheduleAfterClampsNegative(t *testing.T) {
	e := New()
	ran := false
	e.ScheduleAfter(-time.Second, func(now time.Duration) {
		ran = true
		if now != 0 {
			t.Errorf("negative delay should run now, got %v", now)
		}
	})
	e.RunAll()
	if !ran {
		t.Fatalf("event did not run")
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	e := New()
	ran := 0
	_ = e.Schedule(time.Second, func(time.Duration) { ran++ })
	_ = e.Schedule(time.Hour, func(time.Duration) { ran++ })
	n := e.Run(time.Minute)
	if n != 1 || ran != 1 {
		t.Fatalf("expected only the first event to run, got n=%d ran=%d", n, ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("one event should remain pending, got %d", e.Pending())
	}
	if e.Now() != time.Minute {
		t.Fatalf("clock should stop at the horizon, got %v", e.Now())
	}
}

func TestStepAdvancesClock(t *testing.T) {
	e := New()
	_ = e.Schedule(7*time.Second, func(time.Duration) {})
	if !e.Step() {
		t.Fatalf("expected an event to run")
	}
	if e.Now() != 7*time.Second {
		t.Fatalf("clock = %v, want 7s", e.Now())
	}
	if e.Step() {
		t.Fatalf("no events should remain")
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New()
	var times []time.Duration
	_ = e.Schedule(time.Second, func(now time.Duration) {
		times = append(times, now)
		e.ScheduleAfter(2*time.Second, func(now time.Duration) {
			times = append(times, now)
		})
	})
	e.Run(time.Minute)
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Fatalf("times = %v", times)
	}
	if e.Processed() != 2 {
		t.Fatalf("processed = %d, want 2", e.Processed())
	}
}

func TestEvery(t *testing.T) {
	e := New()
	count := 0
	e.Every(time.Minute, 10*time.Minute, func(time.Duration) bool {
		count++
		return true
	})
	e.Run(10 * time.Minute)
	if count != 10 {
		t.Fatalf("periodic event ran %d times, want 10", count)
	}
}

func TestEveryStopsWhenPredicateFalse(t *testing.T) {
	e := New()
	count := 0
	e.Every(time.Minute, time.Hour, func(time.Duration) bool {
		count++
		return count < 3
	})
	e.Run(time.Hour)
	if count != 3 {
		t.Fatalf("periodic event ran %d times, want 3", count)
	}
}

func TestEveryInvalidPeriodOrHorizon(t *testing.T) {
	e := New()
	e.Every(0, time.Hour, func(time.Duration) bool { t.Fatal("should not run"); return true })
	e.Every(time.Hour, time.Minute, func(time.Duration) bool { t.Fatal("should not run"); return true })
	e.RunAll()
}

func TestStatsCounters(t *testing.T) {
	e := New()
	for i := 0; i < 100; i++ {
		_ = e.Schedule(time.Duration(100-i)*time.Second, func(time.Duration) {})
	}
	if got := e.Stats().MaxPending; got != 100 {
		t.Fatalf("MaxPending = %d, want 100", got)
	}
	e.RunAll()
	st := e.Stats()
	if st.Scheduled != 100 || st.Executed != 100 {
		t.Fatalf("Scheduled/Executed = %d/%d, want 100/100", st.Scheduled, st.Executed)
	}
	if st.HeapGrowths == 0 {
		t.Fatalf("growing from an empty queue must reallocate at least once")
	}
	if st.MaxPending != 100 {
		t.Fatalf("MaxPending = %d after drain, want 100", st.MaxPending)
	}
}

// TestSteadyStateDoesNotGrowHeap is the allocation contract: once the queue's
// high-water mark is reached, scheduling and draining events reuses the
// backing array and performs no further heap growth.
func TestSteadyStateDoesNotGrowHeap(t *testing.T) {
	e := New()
	for round := 0; round < 3; round++ {
		for i := 0; i < 64; i++ {
			e.ScheduleAfter(time.Duration(i)*time.Millisecond, func(time.Duration) {})
		}
		e.RunAll()
	}
	grown := e.Stats().HeapGrowths
	for round := 0; round < 100; round++ {
		for i := 0; i < 64; i++ {
			e.ScheduleAfter(time.Duration(i%7)*time.Millisecond, func(time.Duration) {})
		}
		e.RunAll()
	}
	if got := e.Stats().HeapGrowths; got != grown {
		t.Fatalf("steady state grew the heap: %d -> %d reallocations", grown, got)
	}
}

// TestHeapOrderRandomized cross-checks the 4-ary heap against a reference
// sort over many randomized schedules, including duplicate timestamps.
func TestHeapOrderRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := New()
		n := 1 + rng.Intn(200)
		type key struct {
			at  time.Duration
			seq int
		}
		var want []key
		var got []key
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(50)) * time.Second
			k := key{at: at, seq: i}
			want = append(want, k)
			_ = e.Schedule(at, func(now time.Duration) {
				got = append(got, k)
			})
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		e.RunAll()
		if len(got) != len(want) {
			t.Fatalf("trial %d: ran %d events, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: event %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}
