// Package simulator provides a small deterministic discrete-event simulation
// engine used by the YARN/Tez/HDFS models. Events are ordered by time and, for
// equal times, by scheduling order, so runs are exactly reproducible.
package simulator

import (
	"container/heap"
	"errors"
	"time"
)

// Event is a callback executed at its scheduled simulation time.
type Event func(now time.Duration)

type scheduledEvent struct {
	at   time.Duration
	seq  uint64
	fn   Event
	heap int // index in the heap, maintained by the heap interface
}

type eventQueue []*scheduledEvent

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heap = i
	q[j].heap = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.heap = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// ErrPastEvent is returned when an event is scheduled before the current time.
var ErrPastEvent = errors.New("simulator: event scheduled in the past")

// Engine is a discrete-event simulation engine. The zero value is not usable;
// create one with New.
type Engine struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	events uint64
}

// New creates an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events waiting to execute.
func (e *Engine) Pending() int { return len(e.queue) }

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.events }

// Schedule queues fn to run at absolute simulation time at. Scheduling an
// event before the current time returns ErrPastEvent.
func (e *Engine) Schedule(at time.Duration, fn Event) error {
	if at < e.now {
		return ErrPastEvent
	}
	ev := &scheduledEvent{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return nil
}

// ScheduleAfter queues fn to run delay after the current time. Negative delays
// are clamped to zero.
func (e *Engine) ScheduleAfter(delay time.Duration, fn Event) {
	if delay < 0 {
		delay = 0
	}
	// Scheduling relative to now can never be in the past, so the error is
	// impossible here.
	_ = e.Schedule(e.now+delay, fn)
}

// Step executes the next pending event, advancing the clock to its time. It
// returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*scheduledEvent)
	e.now = ev.at
	e.events++
	ev.fn(e.now)
	return true
}

// Run executes events until the queue drains or the next event would be after
// the horizon. The clock finishes at the horizon (if reached) or at the time
// of the last executed event. It returns the number of events executed.
func (e *Engine) Run(horizon time.Duration) uint64 {
	executed := uint64(0)
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		e.Step()
		executed++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return executed
}

// RunAll executes every pending event (including ones scheduled by the events
// themselves) and returns the number executed. Use with care: a self-renewing
// periodic event makes this loop forever, so periodic processes should bound
// themselves or use Run with a horizon.
func (e *Engine) RunAll() uint64 {
	executed := uint64(0)
	for e.Step() {
		executed++
	}
	return executed
}

// Every schedules fn to run at the given period, starting one period from now,
// until the predicate returns false or the horizon passes. It is the building
// block for heartbeats and telemetry ticks.
func (e *Engine) Every(period time.Duration, horizon time.Duration, fn func(now time.Duration) bool) {
	if period <= 0 {
		return
	}
	var tick Event
	tick = func(now time.Duration) {
		if now > horizon {
			return
		}
		if !fn(now) {
			return
		}
		next := now + period
		if next > horizon {
			return
		}
		_ = e.Schedule(next, tick)
	}
	start := e.now + period
	if start > horizon {
		return
	}
	_ = e.Schedule(start, tick)
}
