// Package simulator provides a small deterministic discrete-event simulation
// engine used by the YARN/Tez/HDFS models. Events are ordered by time and, for
// equal times, by scheduling order, so runs are exactly reproducible.
//
// The event queue is a value-type 4-ary min-heap: events are stored inline in
// a single slice, so scheduling an event performs no per-event allocation and
// no interface boxing (the container/heap API would force both). In steady
// state — the queue draining as fast as it fills, the common shape for
// heartbeat-driven simulations — the engine allocates nothing at all; the
// backing array is reused across the whole run and only grows when the
// pending-event high-water mark does. EngineStats exposes those growths so
// harnesses can assert the allocation-free property.
package simulator

import (
	"errors"
	"time"
)

// Event is a callback executed at its scheduled simulation time.
type Event func(now time.Duration)

// scheduledEvent is stored by value in the heap slice: no per-event pointer,
// no heap-index bookkeeping (indices are implicit in the slice).
type scheduledEvent struct {
	at  time.Duration
	seq uint64
	fn  Event
}

// before is the (time, seq) ordering contract: earlier time first, and for
// equal times, scheduling order.
func (a *scheduledEvent) before(b *scheduledEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapArity is the branching factor of the min-heap. A 4-ary heap halves the
// tree depth versus binary, and with value-type elements the four children sit
// in adjacent memory, so the extra comparisons per level are cache hits —
// a well-known win for simulation event queues.
const heapArity = 4

// ErrPastEvent is returned when an event is scheduled before the current time.
var ErrPastEvent = errors.New("simulator: event scheduled in the past")

// EngineStats counts the engine's work and its allocation behaviour.
type EngineStats struct {
	// Scheduled is the total number of events ever queued.
	Scheduled uint64
	// Executed is the total number of events run.
	Executed uint64
	// MaxPending is the high-water mark of the pending-event queue.
	MaxPending int
	// HeapGrowths counts reallocations of the queue's backing array — the
	// only allocations the engine performs. A long steady-state run should
	// show this settle and stop increasing.
	HeapGrowths uint64
}

// Engine is a discrete-event simulation engine. The zero value is not usable;
// create one with New.
type Engine struct {
	now   time.Duration
	queue []scheduledEvent
	seq   uint64
	stats EngineStats
}

// New creates an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events waiting to execute.
func (e *Engine) Pending() int { return len(e.queue) }

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.stats.Executed }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// Schedule queues fn to run at absolute simulation time at. Scheduling an
// event before the current time returns ErrPastEvent.
func (e *Engine) Schedule(at time.Duration, fn Event) error {
	if at < e.now {
		return ErrPastEvent
	}
	e.scheduleAt(at, e.nextSeq(), fn)
	return nil
}

// ScheduleAfter queues fn to run delay after the current time. Negative delays
// are clamped to zero.
func (e *Engine) ScheduleAfter(delay time.Duration, fn Event) {
	if delay < 0 {
		delay = 0
	}
	// Scheduling relative to now can never be in the past.
	e.scheduleAt(e.now+delay, e.nextSeq(), fn)
}

func (e *Engine) nextSeq() uint64 {
	seq := e.seq
	e.seq++
	return seq
}

// scheduleAt is the internal allocation-free path shared by Schedule,
// ScheduleAfter, and the periodic-event rescheduling in Every: it pushes a
// value into the heap with an explicit sequence number, bypassing the
// past-event check callers have already established.
func (e *Engine) scheduleAt(at time.Duration, seq uint64, fn Event) {
	if len(e.queue) == cap(e.queue) {
		e.stats.HeapGrowths++
	}
	e.queue = append(e.queue, scheduledEvent{at: at, seq: seq, fn: fn})
	e.siftUp(len(e.queue) - 1)
	e.stats.Scheduled++
	if len(e.queue) > e.stats.MaxPending {
		e.stats.MaxPending = len(e.queue)
	}
}

// siftUp restores the heap property from leaf i toward the root, holding the
// moving element in a register and writing each displaced parent once.
func (e *Engine) siftUp(i int) {
	ev := e.queue[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !ev.before(&e.queue[parent]) {
			break
		}
		e.queue[i] = e.queue[parent]
		i = parent
	}
	e.queue[i] = ev
}

// popMin removes and returns the earliest event. It must not be called on an
// empty queue. The vacated tail slot's callback is cleared so the closure can
// be collected even while the backing array is retained for reuse.
func (e *Engine) popMin() scheduledEvent {
	min := e.queue[0]
	last := len(e.queue) - 1
	ev := e.queue[last]
	e.queue[last].fn = nil
	e.queue = e.queue[:last]
	if last > 0 {
		e.siftDown(ev)
	}
	return min
}

// siftDown places ev starting from the root, walking the 4-ary tree and
// pulling the smallest child up at each level.
func (e *Engine) siftDown(ev scheduledEvent) {
	n := len(e.queue)
	i := 0
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		smallest := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.queue[c].before(&e.queue[smallest]) {
				smallest = c
			}
		}
		if !e.queue[smallest].before(&ev) {
			break
		}
		e.queue[i] = e.queue[smallest]
		i = smallest
	}
	e.queue[i] = ev
}

// Step executes the next pending event, advancing the clock to its time. It
// returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.popMin()
	e.now = ev.at
	e.stats.Executed++
	ev.fn(e.now)
	return true
}

// Run executes events until the queue drains or the next event would be after
// the horizon. The clock finishes at the horizon (if reached) or at the time
// of the last executed event. It returns the number of events executed.
func (e *Engine) Run(horizon time.Duration) uint64 {
	executed := uint64(0)
	for len(e.queue) > 0 {
		if e.queue[0].at > horizon {
			break
		}
		e.Step()
		executed++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return executed
}

// RunAll executes every pending event (including ones scheduled by the events
// themselves) and returns the number executed. Use with care: a self-renewing
// periodic event makes this loop forever, so periodic processes should bound
// themselves or use Run with a horizon.
func (e *Engine) RunAll() uint64 {
	executed := uint64(0)
	for e.Step() {
		executed++
	}
	return executed
}

// Every schedules fn to run at the given period, starting one period from now,
// until the predicate returns false or the horizon passes. It is the building
// block for heartbeats and telemetry ticks. The tick closure is allocated once
// per Every call and rescheduled through the internal scheduleAt path, so a
// periodic process costs no allocations after setup no matter how many times
// it fires.
func (e *Engine) Every(period time.Duration, horizon time.Duration, fn func(now time.Duration) bool) {
	if period <= 0 {
		return
	}
	var tick Event
	tick = func(now time.Duration) {
		if now > horizon {
			return
		}
		if !fn(now) {
			return
		}
		next := now + period
		if next > horizon {
			return
		}
		e.scheduleAt(next, e.nextSeq(), tick)
	}
	start := e.now + period
	if start > horizon {
		return
	}
	e.scheduleAt(start, e.nextSeq(), tick)
}
