package ledger_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/ledger"
)

// TestRenewExtendsWithoutMovingMillis pins the renew contract: the expiry
// deadline moves, the grants and the conservation books do not.
func TestRenewExtendsWithoutMovingMillis(t *testing.T) {
	now := time.Unix(50_000, 0)
	led := ledger.New(1, 4)
	ls, err := led.Reserve(1, []ledger.Request{
		{Class: 1, Cores: 2.5, Capacity: 100},
		{Class: 3, Cores: 1.0, Capacity: 100},
	}, time.Minute, now)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	before := led.Snapshot()

	renewed, err := led.Renew(ls.ID, 10*time.Minute, now)
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if want := now.Add(10 * time.Minute); !renewed.ExpiresAt.Equal(want) {
		t.Fatalf("renewed expiry = %v, want %v", renewed.ExpiresAt, want)
	}
	if renewed.TotalMillis() != ls.TotalMillis() {
		t.Fatalf("renew changed grant total: %d -> %d", ls.TotalMillis(), renewed.TotalMillis())
	}

	after := led.Snapshot()
	if after.ReservedMillis != before.ReservedMillis || after.ReleasedMillis != before.ReleasedMillis ||
		after.ExpiredMillis != before.ExpiredMillis || after.ForfeitedMillis != before.ForfeitedMillis ||
		after.OutstandingMillis != before.OutstandingMillis {
		t.Fatalf("renew moved millicores: before %+v after %+v", before, after)
	}
	if after.Renews != before.Renews+1 {
		t.Fatalf("Renews = %d, want %d", after.Renews, before.Renews+1)
	}

	// The old deadline no longer reclaims the lease; the new one does.
	if n, _ := led.ExpireBefore(now.Add(2 * time.Minute)); n != 0 {
		t.Fatalf("expiry sweep reclaimed a renewed lease (%d)", n)
	}
	if n, millis := led.ExpireBefore(now.Add(11 * time.Minute)); n != 1 || millis != ls.TotalMillis() {
		t.Fatalf("sweep after renewed deadline = (%d, %d), want (1, %d)", n, millis, ls.TotalMillis())
	}
	final := led.Snapshot()
	if got := final.ReleasedMillis + final.ExpiredMillis + final.ForfeitedMillis + final.OutstandingMillis; got != final.ReservedMillis {
		t.Fatalf("conservation violated after renew+expiry: %+v", final)
	}
}

// TestRenewEdgeCases: unknown ids 404, a non-positive ttl removes the
// deadline entirely, and a released lease cannot be renewed back to life.
func TestRenewEdgeCases(t *testing.T) {
	now := time.Unix(50_000, 0)
	led := ledger.New(1, 2)
	if _, err := led.Renew(12345, time.Minute, now); !errors.Is(err, ledger.ErrUnknownLease) {
		t.Fatalf("Renew(unknown) = %v, want ErrUnknownLease", err)
	}

	ls, err := led.Reserve(1, []ledger.Request{{Class: 0, Cores: 1, Capacity: 10}}, time.Second, now)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	forever, err := led.Renew(ls.ID, 0, now)
	if err != nil {
		t.Fatalf("Renew(ttl=0): %v", err)
	}
	if !forever.ExpiresAt.IsZero() {
		t.Fatalf("ttl<=0 renew left a deadline: %v", forever.ExpiresAt)
	}
	if n, _ := led.ExpireBefore(now.Add(time.Hour)); n != 0 {
		t.Fatal("sweep reclaimed a never-expiring lease")
	}

	if _, err := led.Release(ls.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := led.Renew(ls.ID, time.Minute, now); !errors.Is(err, ledger.ErrUnknownLease) {
		t.Fatalf("Renew(released) = %v, want ErrUnknownLease", err)
	}
}

// TestShardedLeaseRouting drives more classes than the ledger has lease-map
// shards, from many goroutines at once, then releases and renews every lease
// by id alone — exercising the id-bit shard routing end to end. The books
// must close exactly.
func TestShardedLeaseRouting(t *testing.T) {
	const classes = 37 // > the shard count, so class→shard wraps
	now := time.Unix(50_000, 0)
	led := ledger.New(7, classes)

	var mu sync.Mutex
	var ids []uint64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cls := core.ClassID((w*50 + i) % classes)
				ls, err := led.Reserve(7, []ledger.Request{{Class: cls, Cores: 0.25, Capacity: 1 << 20}}, time.Hour, now)
				if err != nil {
					t.Errorf("Reserve: %v", err)
					return
				}
				mu.Lock()
				ids = append(ids, ls.ID)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate lease id %d across shards", id)
		}
		seen[id] = true
	}
	for i, id := range ids {
		if i%2 == 0 {
			if _, err := led.Renew(id, time.Minute, now); err != nil {
				t.Fatalf("Renew(%d): %v", id, err)
			}
		}
		if _, err := led.Release(id); err != nil {
			t.Fatalf("Release(%d): %v", id, err)
		}
	}
	st := led.Snapshot()
	if st.ActiveLeases != 0 || st.OutstandingMillis != 0 {
		t.Fatalf("leases outstanding after draining: %+v", st)
	}
	if st.ReservedMillis != st.ReleasedMillis {
		t.Fatalf("books did not close: reserved %d, released %d", st.ReservedMillis, st.ReleasedMillis)
	}
	for i, m := range st.AllocatedMillisByClass {
		if m != 0 {
			t.Fatalf("class %d occupancy %d after draining", i, m)
		}
	}
}
