package ledger_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/ledger"
)

// checkConservation asserts the exact millicore invariant the CI smoke job
// also checks over /metrics.
func checkConservation(t *testing.T, l *ledger.Ledger) {
	t.Helper()
	st := l.Snapshot()
	if st.ReservedMillis != st.ReleasedMillis+st.ExpiredMillis+st.ForfeitedMillis+st.OutstandingMillis {
		t.Fatalf("conservation broken: reserved %d != released %d + expired %d + forfeited %d + outstanding %d",
			st.ReservedMillis, st.ReleasedMillis, st.ExpiredMillis, st.ForfeitedMillis, st.OutstandingMillis)
	}
	var tableSum int64
	for _, m := range st.AllocatedMillisByClass {
		tableSum += m
	}
	if tableSum != st.OutstandingMillis {
		t.Fatalf("table occupancy %d != outstanding lease millis %d", tableSum, st.OutstandingMillis)
	}
}

func TestReserveReleaseBasics(t *testing.T) {
	l := ledger.New(1, 3)
	now := time.Now()

	lease, err := l.Reserve(1, []ledger.Request{
		{Class: 0, Cores: 2.5, Capacity: 10},
		{Class: 2, Cores: 1, Capacity: 10},
	}, 0, now)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if lease.ID == 0 || lease.TotalMillis() != 3500 {
		t.Fatalf("lease = %+v, want id>0 total 3500", lease)
	}
	if got, ok := l.AllocatedCores(1, 0); !ok || got != 2.5 {
		t.Errorf("AllocatedCores(1,0) = %v,%v, want 2.5,true", got, ok)
	}
	if _, ok := l.AllocatedCores(2, 0); ok {
		t.Error("AllocatedCores accepted a mismatched generation")
	}
	checkConservation(t, l)

	rel, err := l.Release(lease.ID)
	if err != nil || rel.TotalMillis() != 3500 {
		t.Fatalf("Release: %+v, %v", rel, err)
	}
	if got, _ := l.AllocatedCores(1, 0); got != 0 {
		t.Errorf("allocation after release = %v, want 0", got)
	}
	if _, err := l.Release(lease.ID); !errors.Is(err, ledger.ErrUnknownLease) {
		t.Errorf("double release error = %v, want ErrUnknownLease", err)
	}
	checkConservation(t, l)

	// Capacity bound: a request past the bound fails entirely (including its
	// already-CASed earlier classes).
	if _, err := l.Reserve(1, []ledger.Request{
		{Class: 0, Cores: 4, Capacity: 10},
		{Class: 1, Cores: 8, Capacity: 5},
	}, 0, now); err == nil {
		t.Fatal("over-capacity reserve succeeded")
	} else {
		var ie *ledger.InsufficientError
		if !errors.As(err, &ie) || ie.Class != 1 {
			t.Errorf("error = %v, want InsufficientError{Class:1}", err)
		}
	}
	if got, _ := l.AllocatedCores(1, 0); got != 0 {
		t.Errorf("failed reserve leaked %v cores into class 0", got)
	}
	// Stale generation is rejected up front.
	if _, err := l.Reserve(7, []ledger.Request{{Class: 0, Cores: 1, Capacity: 10}}, 0, now); !errors.Is(err, ledger.ErrStaleGeneration) {
		t.Errorf("stale reserve error = %v, want ErrStaleGeneration", err)
	}
	checkConservation(t, l)
}

func TestExpiry(t *testing.T) {
	l := ledger.New(1, 1)
	now := time.Now()
	if _, err := l.Reserve(1, []ledger.Request{{Class: 0, Cores: 2, Capacity: 100}}, time.Minute, now); err != nil {
		t.Fatal(err)
	}
	forever, err := l.Reserve(1, []ledger.Request{{Class: 0, Cores: 3, Capacity: 100}}, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := l.ExpireBefore(now.Add(30 * time.Second)); n != 0 {
		t.Fatalf("expired %d leases before their deadline", n)
	}
	n, millis := l.ExpireBefore(now.Add(2 * time.Minute))
	if n != 1 || millis != 2000 {
		t.Fatalf("ExpireBefore = %d leases, %d millis; want 1, 2000", n, millis)
	}
	// The TTL-less lease survives any sweep.
	if n, _ := l.ExpireBefore(now.Add(1000 * time.Hour)); n != 0 {
		t.Fatalf("TTL-less lease expired")
	}
	if got, _ := l.AllocatedCores(1, 0); got != 3 {
		t.Errorf("allocation after expiry = %v, want 3", got)
	}
	if _, err := l.Release(forever.ID); err != nil {
		t.Fatal(err)
	}
	checkConservation(t, l)
}

// TestConcurrentReserveNeverOverPromises is the package-level half of the
// PR's acceptance test: goroutines hammer one class with random reservations
// under a fixed capacity bound; the bound must hold at every instant and the
// books must balance at the end.
func TestConcurrentReserveNeverOverPromises(t *testing.T) {
	const (
		workers  = 16
		capacity = 100.0 // cores
	)
	l := ledger.New(1, 1)
	now := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			held := make([]uint64, 0, 64)
			for i := 0; i < 2000; i++ {
				if len(held) > 0 && rng.Intn(3) == 0 {
					id := held[len(held)-1]
					held = held[:len(held)-1]
					if _, err := l.Release(id); err != nil {
						t.Errorf("release: %v", err)
						return
					}
					continue
				}
				cores := float64(1+rng.Intn(50)) / 10
				lease, err := l.Reserve(1, []ledger.Request{{Class: 0, Cores: cores, Capacity: capacity}}, 0, now)
				if err != nil {
					var ie *ledger.InsufficientError
					if !errors.As(err, &ie) {
						t.Errorf("reserve: %v", err)
						return
					}
					continue
				}
				held = append(held, lease.ID)
				// The bound must hold immediately after our own admission.
				if got, _ := l.AllocatedCores(1, 0); got > capacity {
					t.Errorf("allocation %v exceeded capacity %v", got, capacity)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	st := l.Snapshot()
	if st.OutstandingMillis > int64(capacity*ledger.MillisPerCore) {
		t.Fatalf("final outstanding %d millis exceeds capacity", st.OutstandingMillis)
	}
	if st.Reserves == 0 || st.Conflicts == 0 {
		t.Fatalf("test exercised nothing: %d reserves, %d conflicts", st.Reserves, st.Conflicts)
	}
	checkConservation(t, l)
}

func TestRekeyConservesTotals(t *testing.T) {
	l := ledger.New(1, 2)
	now := time.Now()
	a, err := l.Reserve(1, []ledger.Request{{Class: 0, Cores: 10, Capacity: 100}}, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Reserve(1, []ledger.Request{{Class: 1, Cores: 0.007, Capacity: 100}}, 0, now); err != nil {
		t.Fatal(err)
	}
	before := l.Snapshot()

	// Generation 2 has 3 classes: old class 0's servers split 2:1 between new
	// classes 0 and 2; old class 1 maps entirely to new class 1.
	l.Rekey(2, 3, map[core.ClassID][]ledger.Share{
		0: {{Class: 0, Weight: 2}, {Class: 2, Weight: 1}},
		1: {{Class: 1, Weight: 5}},
	})
	after := l.Snapshot()
	if after.Generation != 2 {
		t.Fatalf("generation = %d, want 2", after.Generation)
	}
	if after.OutstandingMillis != before.OutstandingMillis {
		t.Fatalf("rekey changed outstanding: %d -> %d", before.OutstandingMillis, after.OutstandingMillis)
	}
	// 10 cores split 2:1 = 6667/3333 millis (largest remainder).
	if got := after.AllocatedMillisByClass[0] + after.AllocatedMillisByClass[2]; got != 10000 {
		t.Errorf("split of class 0 = %d millis, want 10000", got)
	}
	if after.AllocatedMillisByClass[1] != 7 {
		t.Errorf("class 1 carry = %d millis, want 7", after.AllocatedMillisByClass[1])
	}
	checkConservation(t, l)

	// Release after the re-key returns the re-keyed grants.
	rel, err := l.Release(a.ID)
	if err != nil || rel.TotalMillis() != 10000 {
		t.Fatalf("post-rekey release: %+v, %v", rel, err)
	}
	// A reservation keyed to the old generation is refused.
	if _, err := l.Reserve(1, []ledger.Request{{Class: 0, Cores: 1, Capacity: 100}}, 0, now); !errors.Is(err, ledger.ErrStaleGeneration) {
		t.Errorf("old-generation reserve error = %v, want ErrStaleGeneration", err)
	}
	checkConservation(t, l)
}

func TestRekeyForfeitsUnmappedClasses(t *testing.T) {
	l := ledger.New(1, 2)
	now := time.Now()
	if _, err := l.Reserve(1, []ledger.Request{{Class: 0, Cores: 4, Capacity: 10}, {Class: 1, Cores: 2, Capacity: 10}}, 0, now); err != nil {
		t.Fatal(err)
	}
	// Class 1's servers all left the serving set: its grants are forfeited.
	l.Rekey(2, 1, map[core.ClassID][]ledger.Share{0: {{Class: 0, Weight: 1}}})
	st := l.Snapshot()
	if st.ForfeitedMillis != 2000 {
		t.Fatalf("forfeited = %d millis, want 2000", st.ForfeitedMillis)
	}
	if st.OutstandingMillis != 4000 {
		t.Fatalf("outstanding = %d millis, want 4000", st.OutstandingMillis)
	}
	checkConservation(t, l)
}

// TestConcurrentReserveAcrossRekey races reservations against repeated
// re-keys: every grant must land in exactly one generation's books — never
// lost, never double-counted — and the books must balance afterwards.
func TestConcurrentReserveAcrossRekey(t *testing.T) {
	l := ledger.New(1, 2)
	now := time.Now()
	stop := make(chan struct{})
	var rekeys int
	go func() {
		defer close(stop)
		for g := uint64(2); g <= 40; g++ {
			l.Rekey(g, 2, map[core.ClassID][]ledger.Share{
				0: {{Class: 0, Weight: 1}, {Class: 1, Weight: 1}},
				1: {{Class: 1, Weight: 1}},
			})
			rekeys++
			time.Sleep(100 * time.Microsecond)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen := l.Generation()
				_, err := l.Reserve(gen, []ledger.Request{{Class: core.ClassID(rng.Intn(2)), Cores: 0.5, Capacity: 1e9}}, 0, now)
				if err != nil && !errors.Is(err, ledger.ErrStaleGeneration) {
					t.Errorf("reserve: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	st := l.Snapshot()
	if st.Reserves == 0 {
		t.Fatal("no reservation ever succeeded")
	}
	checkConservation(t, l)
}

func TestExportRestore(t *testing.T) {
	l := ledger.New(3, 2)
	now := time.Now()
	keep, err := l.Reserve(3, []ledger.Request{{Class: 0, Cores: 2, Capacity: 10}}, time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	gone, err := l.Reserve(3, []ledger.Request{{Class: 1, Cores: 1, Capacity: 10}}, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Release(gone.ID); err != nil {
		t.Fatal(err)
	}

	st := l.Export()
	restored, err := ledger.Restore(st, 3, 2)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	rs := restored.Snapshot()
	ls := l.Snapshot()
	if rs.OutstandingMillis != ls.OutstandingMillis || rs.ReservedMillis != ls.ReservedMillis ||
		rs.ReleasedMillis != ls.ReleasedMillis || rs.ActiveLeases != ls.ActiveLeases {
		t.Fatalf("restored stats diverge: %+v vs %+v", rs, ls)
	}
	if got, _ := restored.AllocatedCores(3, 0); got != 2 {
		t.Errorf("restored allocation = %v, want 2", got)
	}
	// The restored ledger keeps issuing fresh unique ids alongside the
	// persisted ones (ids are random draws, not a resumed counter).
	next, err := restored.Reserve(3, []ledger.Request{{Class: 0, Cores: 1, Capacity: 10}}, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if next.ID == 0 || next.ID == keep.ID || next.ID == gone.ID {
		t.Errorf("restored id %d collides or is zero (persisted %d, %d)", next.ID, keep.ID, gone.ID)
	}
	if _, err := restored.Release(keep.ID); err != nil {
		t.Errorf("restored lease not releasable: %v", err)
	}
	checkConservation(t, restored)

	// Generation mismatch is refused — the caller then starts fresh.
	if _, err := ledger.Restore(st, 4, 2); err == nil {
		t.Error("mismatched-generation restore succeeded")
	}
	// Out-of-range grants are forfeited, not trusted.
	shrunk, err := ledger.Restore(st, 3, 1)
	if err != nil {
		t.Fatalf("shrunk Restore: %v", err)
	}
	checkConservation(t, shrunk)
}

// TestLeaseIDsUnguessable pins the lease-id hardening: ids are random
// 53-bit draws (capped so float64-backed JSON consumers round-trip them
// exactly), per-ledger independent, never zero, and nothing like the old
// enumerable counter. (A sequential ledger would hand out 1, 2, 3 here.)
func TestLeaseIDsUnguessable(t *testing.T) {
	now := time.Now()
	ids := make(map[uint64]bool)
	small := 0
	for range 2 {
		l := ledger.New(1, 1)
		for range 8 {
			ls, err := l.Reserve(1, []ledger.Request{{Class: 0, Cores: 0.001, Capacity: 1000}}, 0, now)
			if err != nil {
				t.Fatal(err)
			}
			if ls.ID == 0 {
				t.Fatal("zero lease id issued")
			}
			if ids[ls.ID] {
				t.Fatalf("duplicate lease id %d across ledgers", ls.ID)
			}
			ids[ls.ID] = true
			if ls.ID >= 1<<53 {
				t.Fatalf("lease id %d exceeds the float64-exact JSON range", ls.ID)
			}
			if ls.ID <= 1<<32 {
				small++
			}
		}
	}
	// 16 uniform draws from 2^53 each land under 2^32 with probability
	// ~2^-21. Allow one for paranoia's sake.
	if small > 1 {
		t.Fatalf("%d of 16 ids in the low 32-bit range — not uniform draws", small)
	}
}
