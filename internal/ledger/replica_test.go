package ledger_test

import (
	"errors"
	"testing"
	"time"

	"harvest/internal/ledger"
)

// TestReserveFloorsTightenAdmission pins the admission-floor contract: a
// published floor shrinks every class's admitted capacity immediately — the
// between-refreshes guard against utilization rising under outstanding
// capacity bounds — and floors for a non-current generation are inert.
func TestReserveFloorsTightenAdmission(t *testing.T) {
	l := ledger.New(1, 2)
	now := time.Now()

	// Without a floor, 0.8 cores fit under a 1.0-core capacity bound.
	lease, err := l.Reserve(1, []ledger.Request{{Class: 0, Cores: 0.8, Capacity: 1.0}}, 0, now)
	if err != nil {
		t.Fatalf("Reserve without floor: %v", err)
	}
	if _, err := l.Release(lease.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}

	// A 500-milli floor on class 0 models utilization rising by half a core
	// per server-class since the capacity was derived: the same request must
	// now fail admission before the next snapshot refresh.
	l.SetFloors(1, []int64{500, 0})
	if _, err := l.Reserve(1, []ledger.Request{{Class: 0, Cores: 0.8, Capacity: 1.0}}, 0, now); err == nil {
		t.Fatal("floored reserve admitted 0.8 cores against a 1.0-capacity class with a 0.5-core floor")
	} else {
		var ie *ledger.InsufficientError
		if !errors.As(err, &ie) || ie.Class != 0 {
			t.Fatalf("error = %v, want InsufficientError{Class:0}", err)
		}
	}
	// What still fits under the tightened bound is admitted.
	lease, err = l.Reserve(1, []ledger.Request{{Class: 0, Cores: 0.5, Capacity: 1.0}}, 0, now)
	if err != nil {
		t.Fatalf("Reserve under floored bound: %v", err)
	}
	if lease.TotalMillis() != 500 {
		t.Fatalf("granted %d millis, want 500", lease.TotalMillis())
	}
	// Class 1 has a zero floor and is unaffected.
	if _, err := l.Reserve(1, []ledger.Request{{Class: 1, Cores: 0.9, Capacity: 1.0}}, 0, now); err != nil {
		t.Fatalf("unfloored class tightened: %v", err)
	}
	if st := l.Snapshot(); len(st.ReserveFloorMillisByClass) != 2 || st.ReserveFloorMillisByClass[0] != 500 {
		t.Fatalf("Stats floors = %v, want [500 0]", st.ReserveFloorMillisByClass)
	}
	checkConservation(t, l)

	// Floors keyed to another generation must not misapply.
	l2 := ledger.New(3, 1)
	l2.SetFloors(2, []int64{1000})
	if _, err := l2.Reserve(3, []ledger.Request{{Class: 0, Cores: 0.9, Capacity: 1.0}}, 0, now); err != nil {
		t.Fatalf("stale-generation floor applied: %v", err)
	}
	if fs := l2.Floors(); fs != nil {
		t.Fatalf("Floors() for mismatched generation = %v, want nil", fs)
	}
}

// TestApplyStateReplicatesBooks pins the follower-apply contract: ApplyState
// overwrites an existing ledger in place with a primary's Export, the books
// conserve exactly afterwards, lease ids survive verbatim (release on the
// replica finds them), and a second apply fully supersedes the first.
func TestApplyStateReplicatesBooks(t *testing.T) {
	now := time.Now()
	primary := ledger.New(5, 3)
	a, err := primary.Reserve(5, []ledger.Request{{Class: 0, Cores: 2, Capacity: 10}, {Class: 2, Cores: 1, Capacity: 10}}, time.Minute, now)
	if err != nil {
		t.Fatalf("Reserve a: %v", err)
	}
	b, err := primary.Reserve(5, []ledger.Request{{Class: 1, Cores: 4, Capacity: 10}}, 0, now)
	if err != nil {
		t.Fatalf("Reserve b: %v", err)
	}
	if _, err := primary.Release(b.ID); err != nil {
		t.Fatalf("Release b: %v", err)
	}

	follower := ledger.New(1, 1) // stale shape on purpose: apply must re-key
	follower.ApplyState(primary.Export(), 3)

	pst, fst := primary.Snapshot(), follower.Snapshot()
	if fst.Generation != 5 {
		t.Fatalf("follower generation = %d, want 5", fst.Generation)
	}
	if fst.ReservedMillis != pst.ReservedMillis || fst.ReleasedMillis != pst.ReleasedMillis ||
		fst.OutstandingMillis != pst.OutstandingMillis || fst.ActiveLeases != pst.ActiveLeases {
		t.Fatalf("follower books %+v diverge from primary %+v", fst, pst)
	}
	checkConservation(t, follower)

	// The replicated lease is releasable on the follower under its original
	// id — the promotion scenario.
	rel, err := follower.Release(a.ID)
	if err != nil || rel.TotalMillis() != a.TotalMillis() {
		t.Fatalf("Release replicated lease: %+v, %v", rel, err)
	}
	checkConservation(t, follower)

	// A later state fully supersedes: the released lease must not resurrect.
	follower.ApplyState(primary.Export(), 3)
	if _, err := follower.Release(b.ID); !errors.Is(err, ledger.ErrUnknownLease) {
		t.Fatalf("released-on-primary lease resurrected on follower: %v", err)
	}
	checkConservation(t, follower)

	// New reservations on the promoted follower coexist with applied leases.
	if _, err := follower.Reserve(5, []ledger.Request{{Class: 0, Cores: 1, Capacity: 10}}, 0, now); err != nil {
		t.Fatalf("post-promotion reserve: %v", err)
	}
	checkConservation(t, follower)
}

// TestApplyStateForfeitsOutOfRangeClasses mirrors Restore's defensive
// posture: a grant naming a class outside the applied clustering is
// forfeited, keeping conservation exact instead of trusting the frame.
func TestApplyStateForfeitsOutOfRangeClasses(t *testing.T) {
	st := ledger.State{
		Generation:     2,
		ReservedMillis: 3000,
		Leases: []ledger.PersistedLease{
			{ID: 1, Grants: []ledger.Grant{{Class: 0, Millis: 1000}, {Class: 9, Millis: 2000}}},
		},
	}
	l := ledger.New(1, 1)
	l.ApplyState(st, 1)
	out := l.Snapshot()
	if out.ForfeitedMillis != 2000 || out.OutstandingMillis != 1000 {
		t.Fatalf("forfeited %d outstanding %d, want 2000/1000", out.ForfeitedMillis, out.OutstandingMillis)
	}
	checkConservation(t, l)
}
