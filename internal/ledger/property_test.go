package ledger_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/ledger"
)

// leasePool is the shared bag of outstanding lease ids the concurrent
// workers reserve into and release/steal from — releases race each other (and
// the sweeps), so double-release and release-after-expiry paths are exercised
// constantly.
type leasePool struct {
	mu  sync.Mutex
	ids []uint64
}

func (p *leasePool) put(id uint64) {
	p.mu.Lock()
	p.ids = append(p.ids, id)
	p.mu.Unlock()
}

func (p *leasePool) take(rng *rand.Rand) (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ids) == 0 {
		return 0, false
	}
	i := rng.Intn(len(p.ids))
	id := p.ids[i]
	p.ids[i] = p.ids[len(p.ids)-1]
	p.ids = p.ids[:len(p.ids)-1]
	return id, true
}

// TestLedgerBooksUnderRandomInterleavings is the books property test: any
// interleaving of Reserve / Release / lease expiry / sweep across goroutines
// must keep
//
//	reserved == released + expired + forfeited + outstanding
//
// exactly (integer millicores) at every quiescent point, with the per-class
// counter table equal to the live leases' grant sum and bounded by the
// admission capacity. Runs several rounds, re-keying the ledger between some
// of them so generations advance mid-history like the serving layer's
// refresher does.
func TestLedgerBooksUnderRandomInterleavings(t *testing.T) {
	const (
		numClasses  = 6
		capacity    = 400.0 // per-class admission bound, cores
		workers     = 8
		opsPerRound = 400
		rounds      = 3
	)
	led := ledger.New(1, numClasses)
	pool := &leasePool{}
	generation := uint64(1)

	quiescentCheck := func(when string, checkCapacity bool) {
		t.Helper()
		st := led.Snapshot()
		if got := st.ReleasedMillis + st.ExpiredMillis + st.ForfeitedMillis + st.OutstandingMillis; got != st.ReservedMillis {
			t.Fatalf("%s: conservation violated: reserved %d, sinks sum %d (%+v)", when, st.ReservedMillis, got, st)
		}
		var tableSum int64
		for i, m := range st.AllocatedMillisByClass {
			if m < 0 {
				t.Fatalf("%s: class %d counter negative: %d", when, i, m)
			}
			// Admission bounds each class while a generation lasts; a re-key
			// may legally concentrate conserved grants past the bound (it
			// re-keys, it does not re-admit), so the check stops applying
			// once the first re-key has run.
			if checkCapacity && m > int64(capacity*ledger.MillisPerCore) {
				t.Fatalf("%s: class %d over-promised: %d millis > capacity", when, i, m)
			}
			tableSum += m
		}
		if tableSum != st.OutstandingMillis {
			t.Fatalf("%s: table sum %d != outstanding %d", when, tableSum, st.OutstandingMillis)
		}
	}

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*workers + w)))
				for i := 0; i < opsPerRound; i++ {
					switch rng.Intn(10) {
					case 0, 1, 2, 3, 4: // reserve
						n := rng.Intn(3) + 1
						reqs := make([]ledger.Request, 0, n)
						for j := 0; j < n; j++ {
							reqs = append(reqs, ledger.Request{
								Class:    core.ClassID(rng.Intn(numClasses)),
								Cores:    float64(rng.Intn(8000)+1) / ledger.MillisPerCore,
								Capacity: capacity,
							})
						}
						var ttl time.Duration
						if rng.Intn(2) == 0 {
							// Many leases are already expired at reserve time,
							// so sweeps constantly race releases.
							ttl = time.Duration(rng.Intn(2_000_000)) * time.Nanosecond
						}
						ls, err := led.Reserve(generation, reqs, ttl, time.Now())
						if err == nil {
							pool.put(ls.ID)
						}
						// Insufficient/stale errors are legitimate outcomes
						// of the race; the books must balance regardless.
					case 5, 6, 7, 8: // release (racing other releases and sweeps)
						if id, ok := pool.take(rng); ok {
							led.Release(id)
						}
					case 9: // sweep
						led.ExpireBefore(time.Now())
					}
				}
			}(w)
		}
		wg.Wait()
		quiescentCheck("after round", round == 0)

		// Advance the generation between rounds like a snapshot refresh: an
		// identity-ish remap with random weights (every class keeps a home,
		// so nothing forfeits by construction — forfeiture is fuzz-covered).
		generation++
		remap := make(map[core.ClassID][]ledger.Share, numClasses)
		rng := rand.New(rand.NewSource(int64(round)))
		for c := 0; c < numClasses; c++ {
			remap[core.ClassID(c)] = []ledger.Share{
				{Class: core.ClassID(c), Weight: float64(rng.Intn(3) + 1)},
				{Class: core.ClassID((c + 1) % numClasses), Weight: float64(rng.Intn(3))},
			}
		}
		led.Rekey(generation, numClasses, remap)
		quiescentCheck("after rekey", false)
	}

	// Drain: release everything still held, sweep the expired, and require
	// the books to close with nothing outstanding.
	for {
		id, ok := pool.take(rand.New(rand.NewSource(1)))
		if !ok {
			break
		}
		led.Release(id)
	}
	led.ExpireBefore(time.Now().Add(time.Hour))
	quiescentCheck("after drain", false)
	st := led.Snapshot()
	if st.OutstandingMillis != 0 || st.ActiveLeases != 0 {
		t.Fatalf("drained ledger still outstanding: %+v", st)
	}
	if st.Reserves == 0 || st.Releases == 0 || st.Expiries == 0 {
		t.Fatalf("test exercised too little: %+v", st)
	}
}
