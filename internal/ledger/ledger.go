// Package ledger tracks live secondary-work allocations per utilization
// class. The paper's harvesting controller only hands out spare cores that
// are actually spare: once a job is granted headroom in a class, that
// headroom is gone until the job releases it (§4.1's AllocatedCores term).
// The serving layer's snapshots are immutable, so this package supplies the
// one piece of mutable shared state the query path needs — a per-class
// allocation counter — layered *over* the snapshots without breaking their
// contract.
//
// Concurrency model: allocations live in a generation-stamped table of
// atomic millicore counters behind an atomic pointer. Reserve admits with a
// CAS loop bounded by the caller-supplied capacity, so any number of
// concurrent reservations can never jointly over-promise a class. Lease
// bookkeeping (the id → grants map) is sharded: a lease lands on the shard
// of its first granted class, and its id carries the shard index in its low
// bits so Release and Renew route without a global lock. Reserve/Release
// traffic on different classes therefore never contends on a mutex — only
// the global operations (Rekey, Export, Snapshot, List) still quiesce the
// whole ledger, by taking every shard lock in ascending order. Re-keying to
// a new clustering generation swaps in a freshly summed table while holding
// all shard locks, and a reservation racing the swap detects it and retries
// against the new generation instead of landing on the dead table.
//
// Fixed-point: cores are tracked in integer millicores so the conservation
// invariant — reserved == released + expired + forfeited + outstanding — is
// exact, never a float tolerance.
package ledger

import (
	crand "crypto/rand"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/core"
)

// MillisPerCore is the fixed-point scale: allocations are tracked in integer
// thousandths of a core.
const MillisPerCore = 1000

// ToMillis converts cores to millicores, rounding to nearest.
func ToMillis(cores float64) int64 { return int64(math.Round(cores * MillisPerCore)) }

// CoresOf converts millicores back to cores.
func CoresOf(millis int64) float64 { return float64(millis) / MillisPerCore }

// ErrStaleGeneration is returned when a reservation was derived from a
// snapshot generation the ledger has already re-keyed past. The caller should
// reload the current snapshot and retry.
var ErrStaleGeneration = errors.New("ledger: stale snapshot generation")

// ErrUnknownLease is returned by Release and Renew for an id that does not
// exist — never issued, already released, or reclaimed by the expiry sweep.
var ErrUnknownLease = errors.New("ledger: unknown lease")

// InsufficientError reports a reservation that lost the admission race: by
// CAS time the class no longer had room for the requested cores under the
// capacity bound. The caller should re-run selection against the now-current
// counters.
type InsufficientError struct {
	Class core.ClassID
}

func (e *InsufficientError) Error() string {
	return fmt.Sprintf("ledger: class %d has insufficient headroom", e.Class)
}

// Request asks to reserve Cores in one class, admitted only while the class's
// total allocation stays at or below Capacity (the gross spare-core bound the
// selector computed from the same usage view — headroom before subtracting
// allocations).
type Request struct {
	Class    core.ClassID
	Cores    float64
	Capacity float64
}

// Grant is one class's share of a lease, in millicores.
type Grant struct {
	Class  core.ClassID `json:"class"`
	Millis int64        `json:"millis"`
}

// Meta is optional operator-supplied lease metadata: which job holds the
// cores and who owns the job. It is bookkeeping for humans — admission and
// conservation ignore it entirely.
type Meta struct {
	JobID string
	Owner string
}

// Lease is the caller's view of one successful reservation.
type Lease struct {
	ID        uint64
	ExpiresAt time.Time // zero when the lease never expires
	Grants    []Grant
	Meta      Meta
}

// TotalMillis sums the lease's grants.
func (l Lease) TotalMillis() int64 {
	var t int64
	for _, g := range l.Grants {
		t += g.Millis
	}
	return t
}

// Share is one target of a re-key split: an old class's allocation moves to
// Class proportionally to Weight (typically the number of the old class's
// servers that landed there).
type Share struct {
	Class  core.ClassID
	Weight float64
}

// table is one generation's per-class allocation counters.
type table struct {
	generation uint64
	alloc      []atomic.Int64 // millicores, indexed by dense ClassID
}

func newTable(generation uint64, numClasses int) *table {
	return &table{generation: generation, alloc: make([]atomic.Int64, numClasses)}
}

// lease is the internal, mutable twin of Lease (grants are rewritten on
// re-key).
type lease struct {
	id        uint64
	expiresAt time.Time
	grants    []Grant
	meta      Meta
}

// numShards is the lease-map shard count: a power of two so the shard index
// is a mask of the lease id's low bits. 16 shards comfortably exceeds the
// per-class contention a single machine generates while keeping the
// lock-all operations (Rekey, Export) cheap.
const (
	numShards = 16
	shardMask = numShards - 1
)

// shardOf routes a lease id to its owning shard: the shard index rides in
// the id's low bits, stamped at issue time, so routing is O(1) with no
// global state.
func shardOf(id uint64) int { return int(id & shardMask) }

// leaseShard is one lock-striped slice of the lease map. Each shard owns its
// id RNG so issuing never crosses shard boundaries.
type leaseShard struct {
	mu     sync.Mutex
	leases map[uint64]*lease
	idrng  *rand.ChaCha8
}

// floorSet is one generation's per-class admission floors: millicores held
// back from every class's capacity bound because the live usage view shows
// utilization above the level the bound was derived from. Published whole
// behind an atomic pointer by the service's usage-view refresh; a set keyed
// to a generation the ledger has re-keyed past is ignored.
type floorSet struct {
	generation uint64
	millis     []int64 // indexed by dense ClassID; missing classes floor at 0
}

// Ledger tracks one datacenter's live allocations.
type Ledger struct {
	tab atomic.Pointer[table]

	// floors is the current admission-floor set (may lag or lead tab by one
	// generation around a re-key; mismatches disable the floor rather than
	// misapply it).
	floors atomic.Pointer[floorSet]

	// shards hold the lease bookkeeping. Lock order: any single-shard
	// operation takes exactly one shard lock; global operations take all of
	// them in ascending index order. The table swap (Rekey) happens with all
	// shard locks held, so any op holding one shard lock reads a stable
	// table pointer.
	shards [numShards]leaseShard

	// Cumulative counters. The conservation invariant is
	//   reserved == released + expired + forfeited + outstanding
	// in exact millicores, where outstanding is the sum over live leases.
	// Each counter moves while its lease's shard lock is held, so a
	// lock-all reader (Export, Snapshot) sees books consistent with the
	// lease maps.
	reservedMillis  atomic.Int64
	releasedMillis  atomic.Int64
	expiredMillis   atomic.Int64
	forfeitedMillis atomic.Int64
	reserves        atomic.Uint64
	releases        atomic.Uint64
	renews          atomic.Uint64
	expiries        atomic.Uint64 // leases reclaimed by the sweep
	conflicts       atomic.Uint64 // failed reserves (insufficient or stale)
}

// New creates an empty ledger for the given clustering generation.
func New(generation uint64, numClasses int) *Ledger {
	l := &Ledger{}
	for i := range l.shards {
		var seed [32]byte
		if _, err := crand.Read(seed[:]); err != nil {
			// The platform CSPRNG failing is unrecoverable (crypto/rand panics
			// on its own read paths for the same reason): lease ids would be
			// guessable, which release turns into a capability.
			panic("ledger: reading CSPRNG seed: " + err.Error())
		}
		l.shards[i].leases = make(map[uint64]*lease)
		l.shards[i].idrng = rand.NewChaCha8(seed)
	}
	l.tab.Store(newTable(generation, numClasses))
	return l
}

// lockAll acquires every shard lock in ascending order — the global
// quiescence point for Rekey, Export, Snapshot, and List.
func (l *Ledger) lockAll() {
	for i := range l.shards {
		l.shards[i].mu.Lock()
	}
}

func (l *Ledger) unlockAll() {
	for i := range l.shards {
		l.shards[i].mu.Unlock()
	}
}

// maxJSONSafeID bounds lease ids to 53 bits: the JSON API carries them as
// numbers, and float64-backed consumers (JavaScript, jq) silently round
// integers past 2^53 — a client would then release a lease id the server
// never issued. 2^53 random values are still far beyond enumerable.
const maxJSONSafeID = 1<<53 - 1

// newLeaseID draws an unguessable nonzero lease id whose low bits carry the
// shard index, retrying the (vanishing) zero and collision cases. Ids double
// as release capabilities once they cross process boundaries — the binary
// wire protocol freezes them as opaque 64-bit values — so the 49 bits above
// the shard index stay CSPRNG-random, never a counter. Called with the
// shard's lock held.
func (sh *leaseShard) newLeaseID(shardIdx int) uint64 {
	for {
		id := sh.idrng.Uint64()&maxJSONSafeID&^uint64(shardMask) | uint64(shardIdx)
		if id == 0 {
			continue
		}
		if _, taken := sh.leases[id]; !taken {
			return id
		}
	}
}

// Generation returns the clustering generation the ledger is keyed to.
func (l *Ledger) Generation() uint64 { return l.tab.Load().generation }

// AllocatedCores returns the class's current allocation when the ledger is
// keyed to the given generation. ok is false on a generation mismatch or an
// out-of-range class — the caller should then fall back to its snapshot's
// build-time view (the mismatch window is the instants around a re-key).
func (l *Ledger) AllocatedCores(generation uint64, id core.ClassID) (float64, bool) {
	t := l.tab.Load()
	if t.generation != generation || int(id) < 0 || int(id) >= len(t.alloc) {
		return 0, false
	}
	return CoresOf(t.alloc[int(id)].Load()), true
}

// AllocatedMillis is AllocatedCores in the ledger's native fixed point, for
// callers (the select index) that compare against exact occupancy deltas.
func (l *Ledger) AllocatedMillis(generation uint64, id core.ClassID) (int64, bool) {
	t := l.tab.Load()
	if t.generation != generation || int(id) < 0 || int(id) >= len(t.alloc) {
		return 0, false
	}
	return t.alloc[int(id)].Load(), true
}

// Occupancy returns the ledger's generation and current per-class occupancy
// straight from the atomic counter table — no lease-map locks, so hot query
// paths can read it without serializing against Reserve/Release bookkeeping
// (Snapshot scans every lease under the shard locks; this does not).
func (l *Ledger) Occupancy() (generation uint64, allocMillisByClass []int64) {
	t := l.tab.Load()
	out := make([]int64, len(t.alloc))
	for i := range t.alloc {
		out[i] = t.alloc[i].Load()
	}
	return t.generation, out
}

// SetFloors publishes per-class admission floors for the given generation:
// Reserve subtracts floors[class] millicores from every capacity bound, so
// admission tightens immediately when the live usage view shows utilization
// above the level capacities were derived from — without waiting for the
// next snapshot refresh. Floors for a generation the ledger is not keyed to
// are stored but inert until a re-key aligns them (the service republishes
// floors on every view refresh, so the window is one refresh at most). The
// caller must not mutate floors after the call.
func (l *Ledger) SetFloors(generation uint64, floors []int64) {
	l.floors.Store(&floorSet{generation: generation, millis: floors})
}

// floorMillis returns the class's current admission floor, 0 when no floor
// set matches the generation (boot, re-key windows) or the class is out of
// the set's range.
func (l *Ledger) floorMillis(generation uint64, class int) int64 {
	fs := l.floors.Load()
	if fs == nil || fs.generation != generation || class < 0 || class >= len(fs.millis) {
		return 0
	}
	if f := fs.millis[class]; f > 0 {
		return f
	}
	return 0
}

// Floors returns the current floor set when it matches the ledger's
// generation (nil otherwise), for /metrics export.
func (l *Ledger) Floors() []int64 {
	fs := l.floors.Load()
	if fs == nil || fs.generation != l.tab.Load().generation {
		return nil
	}
	return fs.millis
}

// Reserve atomically reserves cores across the requested classes and records
// a lease. Admission per class is a CAS loop bounded by the request's
// Capacity, so concurrent reservations can never jointly push a class's total
// allocation past the bound; a partial reservation that loses a later class's
// race is rolled back completely. ttl > 0 arms the lease for the expiry
// sweep. Zero-core requests are skipped; a reservation that skips everything
// fails.
func (l *Ledger) Reserve(generation uint64, reqs []Request, ttl time.Duration, now time.Time) (Lease, error) {
	return l.ReserveMeta(generation, reqs, ttl, now, Meta{})
}

// ReserveMeta is Reserve with operator metadata attached to the resulting
// lease (surfaced on /debug/traces and the /v1/{dc}/leases listing).
func (l *Ledger) ReserveMeta(generation uint64, reqs []Request, ttl time.Duration, now time.Time, meta Meta) (Lease, error) {
	t := l.tab.Load()
	if t.generation != generation {
		l.conflicts.Add(1)
		return Lease{}, ErrStaleGeneration
	}
	grants := make([]Grant, 0, len(reqs))
	var total int64
	for _, rq := range reqs {
		want := ToMillis(rq.Cores)
		if want <= 0 {
			continue
		}
		if int(rq.Class) < 0 || int(rq.Class) >= len(t.alloc) {
			l.rollback(t, grants)
			l.conflicts.Add(1)
			return Lease{}, fmt.Errorf("ledger: class %d out of range", rq.Class)
		}
		// Floor the bound so float noise can only under-admit, never over —
		// then subtract the class's admission floor, which tightens the bound
		// further when live utilization has risen since the capacity was
		// derived (see SetFloors).
		capMillis := int64(math.Floor(rq.Capacity*MillisPerCore)) - l.floorMillis(t.generation, int(rq.Class))
		a := &t.alloc[int(rq.Class)]
		for {
			cur := a.Load()
			if cur+want > capMillis {
				l.rollback(t, grants)
				l.conflicts.Add(1)
				return Lease{}, &InsufficientError{Class: rq.Class}
			}
			if a.CompareAndSwap(cur, cur+want) {
				break
			}
		}
		grants = append(grants, Grant{Class: rq.Class, Millis: want})
		total += want
	}
	if len(grants) == 0 {
		l.conflicts.Add(1)
		return Lease{}, fmt.Errorf("ledger: nothing to reserve")
	}

	// The lease lands on its first class's shard, so reservations in
	// different classes book-keep on different locks.
	shardIdx := int(grants[0].Class) & shardMask
	sh := &l.shards[shardIdx]
	sh.mu.Lock()
	if l.tab.Load() != t {
		// A re-key swapped the table between our CASes and the insert (Rekey
		// holds every shard lock across the swap, so taking ours ordered us
		// after it): the summed-from-leases new table never saw these grants,
		// so undoing them on the dead table is a no-op for the live one.
		// Retry upstream.
		sh.mu.Unlock()
		l.rollback(t, grants)
		l.conflicts.Add(1)
		return Lease{}, ErrStaleGeneration
	}
	ls := &lease{id: sh.newLeaseID(shardIdx), grants: grants, meta: meta}
	if ttl > 0 {
		ls.expiresAt = now.Add(ttl)
	}
	sh.leases[ls.id] = ls
	// The cumulative counters move under the same shard lock as the lease
	// map entry: Export (persistence) reads both with all shard locks held,
	// and a counter lagging its lease would persist a state that violates
	// conservation across a restart.
	l.reserves.Add(1)
	l.reservedMillis.Add(total)
	sh.mu.Unlock()

	return Lease{ID: ls.id, ExpiresAt: ls.expiresAt, Grants: append([]Grant(nil), grants...), Meta: meta}, nil
}

func (l *Ledger) rollback(t *table, grants []Grant) {
	for _, g := range grants {
		t.alloc[int(g.Class)].Add(-g.Millis)
	}
}

// Release returns a lease's cores to its classes and retires the lease.
func (l *Ledger) Release(id uint64) (Lease, error) {
	sh := &l.shards[shardOf(id)]
	sh.mu.Lock()
	ls, ok := sh.leases[id]
	if !ok {
		sh.mu.Unlock()
		return Lease{}, ErrUnknownLease
	}
	delete(sh.leases, id)
	t := l.tab.Load() // stable: Rekey holds every shard lock across the swap
	var total int64
	for _, g := range ls.grants {
		t.alloc[int(g.Class)].Add(-g.Millis)
		total += g.Millis
	}
	l.releases.Add(1)
	l.releasedMillis.Add(total) // under the shard lock — see ReserveMeta
	sh.mu.Unlock()
	return Lease{ID: id, ExpiresAt: ls.expiresAt, Grants: ls.grants, Meta: ls.meta}, nil
}

// Renew extends (or, with ttl <= 0, removes) a live lease's expiry deadline
// without touching its grants: long jobs keep their cores without paying a
// release + re-select round trip, and no millicores move, so the
// conservation books are untouched by construction.
func (l *Ledger) Renew(id uint64, ttl time.Duration, now time.Time) (Lease, error) {
	sh := &l.shards[shardOf(id)]
	sh.mu.Lock()
	ls, ok := sh.leases[id]
	if !ok {
		sh.mu.Unlock()
		return Lease{}, ErrUnknownLease
	}
	if ttl > 0 {
		ls.expiresAt = now.Add(ttl)
	} else {
		ls.expiresAt = time.Time{}
	}
	out := Lease{ID: id, ExpiresAt: ls.expiresAt, Grants: append([]Grant(nil), ls.grants...), Meta: ls.meta}
	l.renews.Add(1)
	sh.mu.Unlock()
	return out, nil
}

// List returns one page of live leases ordered by id (a stable order for
// pagination), plus the total live count. It walks every shard's lease map
// with all locks held — an operator-endpoint cost, not a hot-path one.
func (l *Ledger) List(offset, limit int) (page []Lease, total int) {
	if limit <= 0 {
		return nil, 0
	}
	l.lockAll()
	defer l.unlockAll()
	for i := range l.shards {
		total += len(l.shards[i].leases)
	}
	if offset >= total {
		return nil, total
	}
	ids := make([]uint64, 0, total)
	for i := range l.shards {
		for id := range l.shards[i].leases {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	end := offset + limit
	if end > total {
		end = total
	}
	page = make([]Lease, 0, end-offset)
	for _, id := range ids[offset:end] {
		ls := l.shards[shardOf(id)].leases[id]
		page = append(page, Lease{
			ID:        ls.id,
			ExpiresAt: ls.expiresAt,
			Grants:    append([]Grant(nil), ls.grants...),
			Meta:      ls.meta,
		})
	}
	return page, total
}

// ExpireBefore reclaims every lease whose deadline is at or before now —
// the sweep for clients that died holding a reservation. Leases with no
// deadline never expire. The sweep walks one shard at a time, so it never
// stalls reserve/release traffic on the other shards.
func (l *Ledger) ExpireBefore(now time.Time) (leases int, millis int64) {
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		t := l.tab.Load() // stable while the shard lock is held
		var shardLeases int
		var shardMillis int64
		for id, ls := range sh.leases {
			if ls.expiresAt.IsZero() || ls.expiresAt.After(now) {
				continue
			}
			delete(sh.leases, id)
			for _, g := range ls.grants {
				t.alloc[int(g.Class)].Add(-g.Millis)
				shardMillis += g.Millis
			}
			shardLeases++
		}
		if shardLeases > 0 {
			l.expiries.Add(uint64(shardLeases))
			l.expiredMillis.Add(shardMillis) // under the shard lock — see ReserveMeta
		}
		sh.mu.Unlock()
		leases += shardLeases
		millis += shardMillis
	}
	return leases, millis
}

// Rekey moves the ledger to a new clustering generation. Every live lease's
// grants are split across the new classes according to remap — old class →
// weighted shares, typically "where did this class's servers land" — with
// largest-remainder apportioning so each grant's millicore total is conserved
// exactly. Grants on an old class with no shares (every server left the
// serving set) are forfeited and counted. The new table is summed from the
// rewritten leases and published with one atomic swap while every shard lock
// is held; a reservation racing the swap rolls itself back and retries (see
// ReserveMeta). Leases stay on their issuing shard — the id's shard bits are
// immutable — even when a grant remap moves their classes.
func (l *Ledger) Rekey(newGeneration uint64, numClasses int, remap map[core.ClassID][]Share) {
	l.lockAll()
	defer l.unlockAll()
	nt := newTable(newGeneration, numClasses)
	for i := range l.shards {
		for _, ls := range l.shards[i].leases {
			ls.grants = l.remapGrants(ls.grants, remap, numClasses)
			for _, g := range ls.grants {
				nt.alloc[int(g.Class)].Add(g.Millis)
			}
		}
	}
	l.tab.Store(nt)
}

// remapGrants rewrites one lease's grants into the new class space,
// conserving each grant's total exactly (or forfeiting it when it has
// nowhere to go). Shares into the same new class merge.
func (l *Ledger) remapGrants(grants []Grant, remap map[core.ClassID][]Share, numClasses int) []Grant {
	merged := make(map[core.ClassID]int64, len(grants))
	for _, g := range grants {
		shares := remap[g.Class]
		var weight float64
		for _, sh := range shares {
			if int(sh.Class) >= 0 && int(sh.Class) < numClasses && sh.Weight > 0 {
				weight += sh.Weight
			}
		}
		if weight <= 0 {
			l.forfeitedMillis.Add(g.Millis)
			continue
		}
		// Largest-remainder apportioning: floors first, then hand the
		// leftover millis to the largest fractional parts, so the split sums
		// to g.Millis exactly.
		type part struct {
			class core.ClassID
			base  int64
			frac  float64
		}
		parts := make([]part, 0, len(shares))
		var assigned int64
		for _, sh := range shares {
			if int(sh.Class) < 0 || int(sh.Class) >= numClasses || sh.Weight <= 0 {
				continue
			}
			exact := float64(g.Millis) * sh.Weight / weight
			base := int64(math.Floor(exact))
			parts = append(parts, part{class: sh.Class, base: base, frac: exact - float64(base)})
			assigned += base
		}
		sort.Slice(parts, func(i, j int) bool {
			if parts[i].frac != parts[j].frac {
				return parts[i].frac > parts[j].frac
			}
			return parts[i].class < parts[j].class // deterministic tie-break
		})
		for i := int64(0); i < g.Millis-assigned; i++ {
			parts[i%int64(len(parts))].base++
		}
		for _, p := range parts {
			merged[p.class] += p.base
		}
	}
	out := make([]Grant, 0, len(merged))
	for cls, m := range merged {
		if m > 0 {
			out = append(out, Grant{Class: cls, Millis: m})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// Stats is a point-in-time summary for /metrics. OutstandingMillis and
// ActiveLeases are read with every shard lock held, so together with the
// cumulative counters they satisfy the conservation invariant exactly
// whenever the ledger is quiescent (and within one in-flight reservation of
// it otherwise).
type Stats struct {
	Generation        uint64
	ActiveLeases      int
	OutstandingMillis int64
	ReservedMillis    int64
	ReleasedMillis    int64
	ExpiredMillis     int64
	ForfeitedMillis   int64
	Reserves          uint64
	Releases          uint64
	Renews            uint64
	Expiries          uint64
	Conflicts         uint64
	// AllocatedMillisByClass is the current table's occupancy, indexed by
	// dense ClassID.
	AllocatedMillisByClass []int64
	// ReserveFloorMillisByClass is the current admission-floor set (nil when
	// no floors are published for this generation), indexed by dense ClassID.
	ReserveFloorMillisByClass []int64
}

// Snapshot returns the ledger's counters and per-class occupancy.
func (l *Ledger) Snapshot() Stats {
	l.lockAll()
	t := l.tab.Load()
	st := Stats{
		Generation:             t.generation,
		AllocatedMillisByClass: make([]int64, len(t.alloc)),
	}
	for i := range l.shards {
		st.ActiveLeases += len(l.shards[i].leases)
		for _, ls := range l.shards[i].leases {
			for _, g := range ls.grants {
				st.OutstandingMillis += g.Millis
			}
		}
	}
	// Cumulative counters read under the same locks their writers hold, so
	// the outstanding sum and the books belong to one consistent instant.
	st.ReservedMillis = l.reservedMillis.Load()
	st.ReleasedMillis = l.releasedMillis.Load()
	st.ExpiredMillis = l.expiredMillis.Load()
	st.ForfeitedMillis = l.forfeitedMillis.Load()
	st.Reserves = l.reserves.Load()
	st.Releases = l.releases.Load()
	st.Renews = l.renews.Load()
	st.Expiries = l.expiries.Load()
	st.Conflicts = l.conflicts.Load()
	l.unlockAll()
	for i := range t.alloc {
		st.AllocatedMillisByClass[i] = t.alloc[i].Load()
	}
	st.ReserveFloorMillisByClass = l.Floors()
	return st
}

// PersistedLease is the wire form of one lease for the persistence file.
// JobID/Owner are optional operator metadata; files written before the
// fields existed restore with them empty.
type PersistedLease struct {
	ID        uint64    `json:"id"`
	ExpiresAt time.Time `json:"expires_at,omitempty"`
	Grants    []Grant   `json:"grants"`
	JobID     string    `json:"job_id,omitempty"`
	Owner     string    `json:"owner,omitempty"`
}

// State is the ledger's full persistable state.
type State struct {
	Generation      uint64           `json:"generation"`
	ReservedMillis  int64            `json:"reserved_millis"`
	ReleasedMillis  int64            `json:"released_millis"`
	ExpiredMillis   int64            `json:"expired_millis"`
	ForfeitedMillis int64            `json:"forfeited_millis"`
	Reserves        uint64           `json:"reserves"`
	Releases        uint64           `json:"releases"`
	Renews          uint64           `json:"renews,omitempty"`
	Expiries        uint64           `json:"expiries"`
	Conflicts       uint64           `json:"conflicts"`
	Leases          []PersistedLease `json:"leases"`
}

// Export captures the ledger's state for persistence.
func (l *Ledger) Export() State {
	l.lockAll()
	defer l.unlockAll()
	var count int
	for i := range l.shards {
		count += len(l.shards[i].leases)
	}
	st := State{
		Generation:      l.tab.Load().generation,
		ReservedMillis:  l.reservedMillis.Load(),
		ReleasedMillis:  l.releasedMillis.Load(),
		ExpiredMillis:   l.expiredMillis.Load(),
		ForfeitedMillis: l.forfeitedMillis.Load(),
		Reserves:        l.reserves.Load(),
		Releases:        l.releases.Load(),
		Renews:          l.renews.Load(),
		Expiries:        l.expiries.Load(),
		Conflicts:       l.conflicts.Load(),
		Leases:          make([]PersistedLease, 0, count),
	}
	for i := range l.shards {
		for _, ls := range l.shards[i].leases {
			st.Leases = append(st.Leases, PersistedLease{
				ID:        ls.id,
				ExpiresAt: ls.expiresAt,
				Grants:    append([]Grant(nil), ls.grants...),
				JobID:     ls.meta.JobID,
				Owner:     ls.meta.Owner,
			})
		}
	}
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].ID < st.Leases[j].ID })
	return st
}

// ApplyState overwrites the ledger's entire state in place from a
// replicated primary's Export — the follower-side apply of the replication
// stream. Unlike Restore it mutates an existing ledger (the shard's ledger
// pointer must stay stable for concurrent readers) and re-keys to whatever
// generation the state carries: the follower's snapshot apply and ledger
// apply arrive as one frame, so the generations move together. Grants on
// classes outside [0, numClasses) are forfeited rather than trusted, exactly
// as in Restore. Lease ids keep their issuing primary's shard bits, so
// Release routes identically after a promotion; fresh ids issued after
// promotion come from this ledger's own CSPRNG streams and are collision-
// checked against the applied set, so a handoff cannot double-grant an id.
func (l *Ledger) ApplyState(st State, numClasses int) {
	l.lockAll()
	defer l.unlockAll()
	nt := newTable(st.Generation, numClasses)
	for i := range l.shards {
		clear(l.shards[i].leases)
	}
	var forfeited int64
	for _, pl := range st.Leases {
		if pl.ID == 0 {
			continue
		}
		sh := &l.shards[shardOf(pl.ID)]
		if _, dup := sh.leases[pl.ID]; dup {
			continue
		}
		grants := make([]Grant, 0, len(pl.Grants))
		for _, g := range pl.Grants {
			if g.Millis <= 0 {
				continue
			}
			if int(g.Class) < 0 || int(g.Class) >= numClasses {
				forfeited += g.Millis
				continue
			}
			grants = append(grants, g)
			nt.alloc[int(g.Class)].Add(g.Millis)
		}
		if len(grants) == 0 {
			continue
		}
		sh.leases[pl.ID] = &lease{id: pl.ID, expiresAt: pl.ExpiresAt, grants: grants, meta: Meta{JobID: pl.JobID, Owner: pl.Owner}}
	}
	l.reservedMillis.Store(st.ReservedMillis)
	l.releasedMillis.Store(st.ReleasedMillis)
	l.expiredMillis.Store(st.ExpiredMillis)
	l.forfeitedMillis.Store(st.ForfeitedMillis + forfeited)
	l.reserves.Store(st.Reserves)
	l.releases.Store(st.Releases)
	l.renews.Store(st.Renews)
	l.expiries.Store(st.Expiries)
	l.conflicts.Store(st.Conflicts)
	l.tab.Store(nt)
}

// Restore rebuilds a ledger from persisted state, keyed to the given
// generation and class count (which must be the restored snapshot's). Grants
// on out-of-range classes are forfeited rather than trusted — the file may
// predate a re-key the process never got to persist. Restored leases route
// to the shard their id's low bits name, whatever process issued them.
func Restore(st State, generation uint64, numClasses int) (*Ledger, error) {
	if st.Generation != generation {
		return nil, fmt.Errorf("ledger: state is for generation %d, snapshot is %d", st.Generation, generation)
	}
	l := New(generation, numClasses)
	t := l.tab.Load()
	l.reservedMillis.Store(st.ReservedMillis)
	l.releasedMillis.Store(st.ReleasedMillis)
	l.expiredMillis.Store(st.ExpiredMillis)
	l.forfeitedMillis.Store(st.ForfeitedMillis)
	l.reserves.Store(st.Reserves)
	l.releases.Store(st.Releases)
	l.renews.Store(st.Renews)
	l.expiries.Store(st.Expiries)
	l.conflicts.Store(st.Conflicts)
	for _, pl := range st.Leases {
		if pl.ID == 0 {
			return nil, fmt.Errorf("ledger: zero lease id")
		}
		sh := &l.shards[shardOf(pl.ID)]
		if _, dup := sh.leases[pl.ID]; dup {
			return nil, fmt.Errorf("ledger: duplicate lease id %d", pl.ID)
		}
		grants := make([]Grant, 0, len(pl.Grants))
		for _, g := range pl.Grants {
			if g.Millis <= 0 {
				continue
			}
			if int(g.Class) < 0 || int(g.Class) >= numClasses {
				l.forfeitedMillis.Add(g.Millis)
				continue
			}
			grants = append(grants, g)
			t.alloc[int(g.Class)].Add(g.Millis)
		}
		if len(grants) == 0 {
			continue
		}
		sh.leases[pl.ID] = &lease{id: pl.ID, expiresAt: pl.ExpiresAt, grants: grants, meta: Meta{JobID: pl.JobID, Owner: pl.Owner}}
	}
	return l, nil
}
