package ledger_test

import (
	"math/rand"
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/ledger"
)

// FuzzLedgerRekeyConservation pins the PR 4 largest-remainder invariant
// against arbitrary inputs: however leases, grants, releases, expiries, and
// server moves (remap shares) are thrown at it, every Rekey must conserve
// millicores exactly —
//
//	reserved == released + expired + forfeited + outstanding
//
// — keep every per-class counter non-negative, and keep the counter table
// equal to the sum of the live leases' grants. Class counts run past the
// lease-map shard count, so leases land on (and re-key across) every shard,
// and renews are mixed in at every stage — a renew moves no millicores, so
// the books must be bit-identical before and after one. The fuzz inputs
// drive a deterministic PRNG, so every failure reproduces from its corpus
// entry.
func FuzzLedgerRekeyConservation(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(12), uint8(2))
	f.Add(int64(42), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(int64(-7), uint8(8), uint8(0), uint8(30), uint8(5))   // everything forfeits
	f.Add(int64(99), uint8(2), uint8(16), uint8(40), uint8(3))  // classes split wide
	f.Add(int64(17), uint8(31), uint8(11), uint8(47), uint8(4)) // more classes than shards
	f.Fuzz(func(t *testing.T, seed int64, numOld8, numNew8, numLeases8, rounds8 uint8) {
		rng := rand.New(rand.NewSource(seed))
		numOld := int(numOld8%32) + 1
		numNew := int(numNew8 % 12) // 0 → every grant forfeits
		numLeases := int(numLeases8 % 48)
		rounds := int(rounds8%4) + 1
		now := time.Unix(10_000, 0)

		led := ledger.New(1, numOld)
		var leaseIDs []uint64
		for i := 0; i < numLeases; i++ {
			// Random grants over random classes; capacity high enough that
			// admission never rejects (rejection paths are covered elsewhere).
			n := rng.Intn(numOld) + 1
			reqs := make([]ledger.Request, 0, n)
			for j := 0; j < n; j++ {
				reqs = append(reqs, ledger.Request{
					Class:    core.ClassID(rng.Intn(numOld)),
					Cores:    float64(rng.Intn(64_000)+1) / ledger.MillisPerCore,
					Capacity: 1 << 20,
				})
			}
			var ttl time.Duration
			if rng.Intn(3) == 0 {
				ttl = time.Duration(rng.Intn(120)+1) * time.Second
			}
			ls, err := led.Reserve(1, reqs, ttl, now)
			if err != nil {
				t.Fatalf("Reserve(%v): %v", reqs, err)
			}
			leaseIDs = append(leaseIDs, ls.ID)
		}
		// Release a random subset and run one expiry sweep so all four sinks
		// of the equation are populated before the first re-key. Renews ride
		// along: they reschedule expiry but must never move a millicore.
		for _, id := range leaseIDs {
			if rng.Intn(4) == 0 {
				led.Renew(id, time.Duration(rng.Intn(240))*time.Second, now)
			}
			if rng.Intn(3) == 0 {
				led.Release(id)
			}
		}
		led.ExpireBefore(now.Add(time.Duration(rng.Intn(180)) * time.Second))

		check := func(when string) {
			st := led.Snapshot()
			if got := st.ReleasedMillis + st.ExpiredMillis + st.ForfeitedMillis + st.OutstandingMillis; got != st.ReservedMillis {
				t.Fatalf("%s: conservation violated: reserved %d != released %d + expired %d + forfeited %d + outstanding %d = %d",
					when, st.ReservedMillis, st.ReleasedMillis, st.ExpiredMillis, st.ForfeitedMillis, st.OutstandingMillis, got)
			}
			if st.ReservedMillis < 0 || st.ReleasedMillis < 0 || st.ExpiredMillis < 0 ||
				st.ForfeitedMillis < 0 || st.OutstandingMillis < 0 {
				t.Fatalf("%s: negative books: %+v", when, st)
			}
			var tableSum int64
			for i, m := range st.AllocatedMillisByClass {
				if m < 0 {
					t.Fatalf("%s: class %d counter negative: %d", when, i, m)
				}
				tableSum += m
			}
			if tableSum != st.OutstandingMillis {
				t.Fatalf("%s: table sum %d != outstanding %d", when, tableSum, st.OutstandingMillis)
			}
		}
		check("before rekey")

		// Random server-move remaps across several generations: each old
		// class scatters over a random (possibly empty → forfeit) share set
		// with random weights, interleaved with more releases and sweeps.
		prevClasses := numOld
		for round := 0; round < rounds; round++ {
			remap := make(map[core.ClassID][]ledger.Share, prevClasses)
			for c := 0; c < prevClasses; c++ {
				n := rng.Intn(4) // 0 → this class's grants forfeit
				shares := make([]ledger.Share, 0, n)
				for j := 0; j < n; j++ {
					cls := core.ClassID(rng.Intn(numNew + 1)) // may be out of range when numNew is small
					shares = append(shares, ledger.Share{Class: cls, Weight: float64(rng.Intn(5))})
				}
				remap[core.ClassID(c)] = shares
			}
			led.Rekey(uint64(2+round), numNew, remap)
			check("after rekey")
			for _, id := range leaseIDs {
				if rng.Intn(5) == 0 {
					led.Renew(id, time.Duration(rng.Intn(240))*time.Second, now)
				}
				if rng.Intn(4) == 0 {
					led.Release(id)
				}
			}
			led.ExpireBefore(now.Add(time.Duration(rng.Intn(300)) * time.Second))
			check("after post-rekey release/sweep")
			prevClasses = numNew
		}
	})
}
