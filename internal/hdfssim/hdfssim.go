// Package hdfssim models the harvesting distributed file system (the HDFS-H
// analogue, §5.4): a NameNode tracking block replicas on DataNodes that live
// on primary-tenant servers, replica placement policies (Stock, PT, History),
// busy-deny behaviour, reimage-driven replica loss, and background
// re-replication at the paper's 30 blocks/hour/server rate.
//
// Two simulations are built on this model:
//
//   - the durability simulation (Figure 15): place blocks, replay one year of
//     disk reimages, and count blocks that lose every replica before
//     re-replication can restore them;
//   - the availability simulation (Figure 16): place blocks and measure how
//     often an access finds every replica on a busy server.
package hdfssim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"harvest/internal/cluster"
	"harvest/internal/core"
	"harvest/internal/stats"
	"harvest/internal/tenant"
	"harvest/internal/trace"
)

// BlockSizeBytes is the HDFS block size (256 MB, §5.1).
const BlockSizeBytes = 256 << 20

// ReplicationRepairRate is how many blocks per hour a single server can
// re-create without overloading the network (§5.1).
const ReplicationRepairRate = 30

// RackSize is the number of servers per rack. Server IDs are assigned
// contiguously per tenant by the trace generator, so racks mostly align with
// tenant boundaries — the physical correlation stock HDFS's rack-local second
// replica is exposed to.
const RackSize = 20

// DefaultRepairDetectionDelay is how long the NameNode takes to declare a
// DataNode dead after its heartbeats stop (stock HDFS waits several missed
// heartbeat intervals) before re-replication of its blocks begins.
const DefaultRepairDetectionDelay = 10 * time.Minute

// RackOf returns the rack a server belongs to.
func RackOf(id tenant.ServerID) int {
	if id < 0 {
		return -1
	}
	return int(id) / RackSize
}

// Policy selects the replica placement variant.
type Policy int

const (
	// PolicyStock places replicas uniformly at random on distinct servers,
	// like stock HDFS unaware of primary tenants (rack locality is not
	// modelled; the paper's stock policy spreads across racks which is
	// equally oblivious to reimaging and utilization patterns).
	PolicyStock Policy = iota
	// PolicyPT is primary-tenant-aware for accesses (busy servers are
	// avoided at read/write time) but still places replicas randomly.
	PolicyPT
	// PolicyHistory uses the two-dimensional clustering placement
	// (Algorithm 2) — HDFS-H.
	PolicyHistory
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyStock:
		return "HDFS-Stock"
	case PolicyPT:
		return "HDFS-PT"
	case PolicyHistory:
		return "HDFS-H"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes a file system instance.
type Config struct {
	Policy Policy
	// Replication is the number of replicas per block (3 by default).
	Replication int
	// BusyThreshold is the primary CPU utilization above which a DataNode
	// denies accesses and is excluded from placement (about 1 - reserve, i.e.
	// ~0.66 on the testbed).
	BusyThreshold float64
	// Seed drives the randomized placement decisions.
	Seed int64
	// EnforceEnvironment keeps Algorithm 2's one-replica-per-environment rule
	// (History policy only).
	EnforceEnvironment bool
	// RepairDetectionDelay is how long after a reimage the NameNode notices
	// the missing DataNode and starts re-replicating its blocks. Zero means
	// DefaultRepairDetectionDelay.
	RepairDetectionDelay time.Duration
}

// DefaultConfig mirrors the paper's defaults for the given policy.
func DefaultConfig(policy Policy) Config {
	return Config{
		Policy:             policy,
		Replication:        3,
		BusyThreshold:      2.0 / 3.0,
		Seed:               1,
		EnforceEnvironment: true,
	}
}

// FileSystem is a NameNode-style view: block -> replica servers.
type FileSystem struct {
	cfg     Config
	cluster *cluster.Cluster
	scheme  *core.PlacementScheme
	rng     *rand.Rand

	// replicas[b] lists the servers holding block b.
	replicas [][]tenant.ServerID
	// usedBytes tracks per-server harvested space.
	usedBytes map[tenant.ServerID]int64
	servers   []tenant.ServerID

	// permScratch is the reusable partial-Fisher–Yates buffer for the
	// stock/PT random server walk, and usedScratch the per-block chosen-server
	// set (at most Replication entries, so a linear scan beats a map). They
	// make CreateBlock allocation-free apart from the stored replica slice;
	// a FileSystem must therefore not place blocks concurrently.
	permScratch []int32
	usedScratch []tenant.ServerID
}

// New builds a file system over the cluster. For PolicyHistory, the placement
// scheme is built from each tenant's historical reimage rate and peak CPU
// utilization, exactly the inputs Algorithm 2 uses.
func New(cl *cluster.Cluster, cfg Config) (*FileSystem, error) {
	if cl == nil || cl.NumServers() == 0 {
		return nil, fmt.Errorf("hdfssim: empty cluster")
	}
	if cfg.Replication <= 0 {
		return nil, fmt.Errorf("hdfssim: replication must be positive")
	}
	if cfg.BusyThreshold <= 0 || cfg.BusyThreshold > 1 {
		return nil, fmt.Errorf("hdfssim: busy threshold %v out of (0,1]", cfg.BusyThreshold)
	}
	fs := &FileSystem{
		cfg:       cfg,
		cluster:   cl,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		usedBytes: make(map[tenant.ServerID]int64, cl.NumServers()),
	}
	for _, srv := range cl.ServerList() {
		fs.servers = append(fs.servers, srv.ID)
	}
	if cfg.Policy == PolicyHistory {
		infos := make([]core.TenantPlacementInfo, 0, len(cl.Population.Tenants))
		for _, t := range cl.Population.Tenants {
			infos = append(infos, core.TenantPlacementInfo{
				ID:             t.ID,
				Environment:    t.Environment,
				ReimageRate:    t.ReimagesPerServerMonth,
				PeakCPU:        t.PeakUtilization(),
				AvailableBytes: t.HarvestableBytes(),
				Servers:        t.Servers,
			})
		}
		scheme, err := core.BuildPlacementScheme(infos)
		if err != nil {
			return nil, fmt.Errorf("hdfssim: %w", err)
		}
		fs.scheme = scheme
	}
	return fs, nil
}

// NumBlocks returns how many blocks have been created.
func (fs *FileSystem) NumBlocks() int { return len(fs.replicas) }

// Replicas returns the servers currently holding block b.
func (fs *FileSystem) Replicas(b int) []tenant.ServerID {
	if b < 0 || b >= len(fs.replicas) {
		return nil
	}
	return fs.replicas[b]
}

// serverHasSpace reports whether a server can hold one more replica.
func (fs *FileSystem) serverHasSpace(id tenant.ServerID) bool {
	srv := fs.cluster.Server(id)
	if srv == nil || srv.Reimaged {
		return false
	}
	if srv.Resources.DiskBytes <= 0 {
		return true
	}
	return fs.usedBytes[id]+BlockSizeBytes <= srv.Resources.DiskBytes
}

// serverBusy reports whether the primary's utilization makes the DataNode
// deny accesses at the given time.
func (fs *FileSystem) serverBusy(id tenant.ServerID, now time.Duration) bool {
	srv := fs.cluster.Server(id)
	if srv == nil {
		return true
	}
	return srv.PrimaryUtilization(now) > fs.cfg.BusyThreshold
}

// CreateBlock places a new block's replicas. writer is the server creating the
// block (-1 for an external client). now is used to exclude busy servers from
// placement under the PT and History policies. It returns the block id.
func (fs *FileSystem) CreateBlock(writer tenant.ServerID, now time.Duration) (int, error) {
	replicas, err := fs.placeReplicas(writer, now)
	if err != nil {
		return -1, err
	}
	for _, s := range replicas {
		fs.usedBytes[s] += BlockSizeBytes
	}
	fs.replicas = append(fs.replicas, replicas)
	return len(fs.replicas) - 1, nil
}

// eligible reports whether a server may receive a new replica at the given
// time under the configured policy.
func (fs *FileSystem) eligible(id tenant.ServerID, now time.Duration) bool {
	if !fs.serverHasSpace(id) {
		return false
	}
	// Stock HDFS does not know about primary tenants, so it may place
	// replicas on busy servers; PT and History avoid them (§5.4).
	if fs.cfg.Policy != PolicyStock && fs.serverBusy(id, now) {
		return false
	}
	return true
}

// rackFilter narrows a pick to (or away from) the writer's rack.
type rackFilter int

const (
	anyRack rackFilter = iota
	sameRack
	remoteRack
)

// pick walks the server list in a uniformly random order — a partial
// Fisher–Yates over the reusable scratch buffer, advanced only as far as the
// search needs — and appends the first server passing the policy, space,
// dedup, and rack filters. It reports whether a server was found.
func (fs *FileSystem) pick(out []tenant.ServerID, now time.Duration, filter rackFilter, writerRack int) ([]tenant.ServerID, bool) {
	n := len(fs.servers)
	fs.permScratch = stats.IdentityPerm(fs.permScratch, n)
	for i := 0; i < n; i++ {
		id := fs.servers[stats.PermNext(fs.rng, fs.permScratch, i)]
		used := false
		for _, u := range fs.usedScratch {
			if u == id {
				used = true
				break
			}
		}
		if used || !fs.eligible(id, now) {
			continue
		}
		if filter == sameRack && RackOf(id) != writerRack {
			continue
		}
		if filter == remoteRack && RackOf(id) == writerRack {
			continue
		}
		fs.usedScratch = append(fs.usedScratch, id)
		return append(out, id), true
	}
	return out, false
}

func (fs *FileSystem) placeReplicas(writer tenant.ServerID, now time.Duration) ([]tenant.ServerID, error) {
	if fs.cfg.Policy == PolicyHistory {
		return fs.scheme.PlaceReplicas(fs.rng, core.PlacementConstraints{
			Replication:        fs.cfg.Replication,
			Writer:             writer,
			ServerEligible:     func(id tenant.ServerID) bool { return fs.eligible(id, now) },
			EnforceEnvironment: fs.cfg.EnforceEnvironment,
		})
	}
	// Stock and PT follow the default HDFS policy (§5.1): the first replica on
	// the writer's server, the second on another server of the writer's rack,
	// and the remaining ones on servers of remote racks. The rack-local copy
	// is what exposes stock HDFS to correlated reimages, since racks largely
	// coincide with environments.
	out := make([]tenant.ServerID, 0, fs.cfg.Replication)
	fs.usedScratch = fs.usedScratch[:0]
	writerRack := -1
	if writer >= 0 && fs.eligible(writer, now) && fs.cluster.Server(writer) != nil {
		out = append(out, writer)
		fs.usedScratch = append(fs.usedScratch, writer)
		writerRack = RackOf(writer)
	}
	// Rack-local second replica.
	if len(out) == 1 && len(out) < fs.cfg.Replication {
		var ok bool
		if out, ok = fs.pick(out, now, sameRack, writerRack); !ok {
			// No eligible rack-mate; fall back to any server.
			out, _ = fs.pick(out, now, anyRack, writerRack)
		}
	}
	// Remaining replicas prefer remote racks, falling back to any server.
	for len(out) < fs.cfg.Replication {
		var ok bool
		if out, ok = fs.pick(out, now, remoteRack, writerRack); ok {
			continue
		}
		if out, ok = fs.pick(out, now, anyRack, writerRack); !ok {
			break
		}
	}
	if len(out) < fs.cfg.Replication {
		return out, fmt.Errorf("hdfssim: only %d of %d replicas could be placed", len(out), fs.cfg.Replication)
	}
	return out, nil
}

// Access attempts to read block b at the given time. It fails only when every
// replica is unavailable: under Stock, replicas never deny (the primary pays
// the interference cost instead); under PT and History, a replica on a busy
// server denies the access, and the client tries the next one (§5.4 G2).
// A block with no replicas (lost) also fails.
func (fs *FileSystem) Access(b int, now time.Duration) bool {
	replicas := fs.Replicas(b)
	if len(replicas) == 0 {
		return false
	}
	if fs.cfg.Policy == PolicyStock {
		return true
	}
	for _, s := range replicas {
		if !fs.serverBusy(s, now) {
			return true
		}
	}
	return false
}

// AllReplicasBusy reports whether every replica of block b sits on a busy
// server at the given time — the unavailability condition of Figure 16,
// independent of policy-specific access semantics.
func (fs *FileSystem) AllReplicasBusy(b int, now time.Duration) bool {
	replicas := fs.Replicas(b)
	if len(replicas) == 0 {
		return true
	}
	for _, s := range replicas {
		if !fs.serverBusy(s, now) {
			return false
		}
	}
	return true
}

// DurabilityResult summarizes a durability simulation.
type DurabilityResult struct {
	Policy        Policy
	Replication   int
	Blocks        int
	LostBlocks    int
	ReimageEvents int
	// LostFraction is LostBlocks / Blocks.
	LostFraction float64
	// RepairedReplicas counts replicas re-created by the background repair.
	RepairedReplicas int
}

// SimulateDurability places the given number of blocks and replays the
// reimage events over the horizon. When a server is reimaged, every replica on
// it is destroyed; the NameNode re-creates missing replicas at
// ReplicationRepairRate per source server per hour (modelled as a fixed
// re-replication delay per lost replica, drawn from the backlog at the time of
// the loss). A block whose replicas all disappear before any repair completes
// is lost permanently (§5.4: durability cannot be fully guaranteed).
func (fs *FileSystem) SimulateDurability(numBlocks int, events []trace.ReimageEvent, horizon time.Duration) (*DurabilityResult, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("hdfssim: need a positive block count")
	}
	// Place all blocks up front, writers chosen uniformly at random.
	for i := 0; i < numBlocks; i++ {
		writer := fs.servers[fs.rng.Intn(len(fs.servers))]
		if _, err := fs.CreateBlock(writer, 0); err != nil {
			return nil, fmt.Errorf("hdfssim: placing block %d: %w", i, err)
		}
	}
	// Index replicas per server for fast invalidation.
	blocksOnServer := make(map[tenant.ServerID][]int, len(fs.servers))
	for b, reps := range fs.replicas {
		for _, s := range reps {
			blocksOnServer[s] = append(blocksOnServer[s], b)
		}
	}
	// Per-block live replica count and pending repairs (completion times).
	live := make([]int, len(fs.replicas))
	for b := range fs.replicas {
		live[b] = len(fs.replicas[b])
	}
	type repair struct {
		block int
		done  time.Duration
	}
	var repairs []repair
	lost := make([]bool, len(fs.replicas))
	res := &DurabilityResult{
		Policy:      fs.cfg.Policy,
		Replication: fs.cfg.Replication,
		Blocks:      numBlocks,
	}
	// Repair backlog per hour bucket approximates the 30 blocks/hour/server
	// rate across the cluster: total repair throughput per hour.
	repairPerHour := ReplicationRepairRate * len(fs.servers)
	if repairPerHour <= 0 {
		repairPerHour = ReplicationRepairRate
	}
	detection := fs.cfg.RepairDetectionDelay
	if detection <= 0 {
		detection = DefaultRepairDetectionDelay
	}
	backlog := 0

	applyRepairs := func(now time.Duration) {
		kept := repairs[:0]
		for _, r := range repairs {
			if r.done <= now {
				if !lost[r.block] && live[r.block] > 0 {
					live[r.block]++
					res.RepairedReplicas++
				}
				if backlog > 0 {
					backlog--
				}
				continue
			}
			kept = append(kept, r)
		}
		repairs = kept
	}

	sorted := make([]trace.ReimageEvent, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	for _, ev := range sorted {
		if ev.At > horizon {
			break
		}
		applyRepairs(ev.At)
		res.ReimageEvents++
		for _, b := range blocksOnServer[ev.Server] {
			if lost[b] || live[b] <= 0 {
				continue
			}
			live[b]--
			if live[b] == 0 {
				lost[b] = true
				res.LostBlocks++
				continue
			}
			// Schedule a repair; it completes after the NameNode's detection
			// delay plus the backlog drained at the cluster-wide repair rate.
			backlog++
			delay := detection + time.Duration(float64(backlog)/float64(repairPerHour)*float64(time.Hour))
			repairs = append(repairs, repair{block: b, done: ev.At + delay})
		}
		// The reimaged server no longer holds any harvested replicas.
		blocksOnServer[ev.Server] = nil
	}
	res.LostFraction = float64(res.LostBlocks) / float64(numBlocks)
	return res, nil
}

// AvailabilityResult summarizes an availability simulation.
type AvailabilityResult struct {
	Policy         Policy
	Replication    int
	Blocks         int
	Accesses       int
	FailedAccesses int
	// FailedFraction is FailedAccesses / Accesses.
	FailedFraction float64
	// MeanUtilization is the cluster's mean primary utilization during the
	// simulation, the x-axis of Figure 16.
	MeanUtilization float64
}

// SimulateAvailability places blocks and then samples accesses uniformly over
// the horizon, counting accesses for which every replica is busy.
func (fs *FileSystem) SimulateAvailability(numBlocks, accesses int, horizon time.Duration) (*AvailabilityResult, error) {
	if numBlocks <= 0 || accesses <= 0 {
		return nil, fmt.Errorf("hdfssim: need positive block and access counts")
	}
	for i := 0; i < numBlocks; i++ {
		writer := fs.servers[fs.rng.Intn(len(fs.servers))]
		if _, err := fs.CreateBlock(writer, 0); err != nil {
			return nil, fmt.Errorf("hdfssim: placing block %d: %w", i, err)
		}
	}
	res := &AvailabilityResult{
		Policy:          fs.cfg.Policy,
		Replication:     fs.cfg.Replication,
		Blocks:          numBlocks,
		Accesses:        accesses,
		MeanUtilization: fs.cluster.MeanPrimaryUtilization(),
	}
	for i := 0; i < accesses; i++ {
		b := fs.rng.Intn(numBlocks)
		at := time.Duration(fs.rng.Float64() * float64(horizon))
		if fs.AllReplicasBusy(b, at) {
			res.FailedAccesses++
		}
	}
	res.FailedFraction = float64(res.FailedAccesses) / float64(accesses)
	return res, nil
}
