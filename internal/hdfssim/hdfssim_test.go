package hdfssim

import (
	"testing"
	"time"

	"harvest/internal/cluster"
	"harvest/internal/tenant"
	"harvest/internal/timeseries"
	"harvest/internal/trace"
)

// buildTestCluster generates a scaled-down DC-9 cluster for tests.
func buildTestCluster(t *testing.T, seed int64, scale float64) (*cluster.Cluster, *trace.Generator) {
	t.Helper()
	profile, ok := trace.ProfileByName("DC-9")
	if !ok {
		t.Fatal("DC-9 profile missing")
	}
	gen := trace.NewGenerator(profile.Scaled(scale), seed)
	pop, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	return cl, gen
}

func TestNewValidation(t *testing.T) {
	cl, _ := buildTestCluster(t, 1, 0.05)
	if _, err := New(nil, DefaultConfig(PolicyStock)); err == nil {
		t.Errorf("nil cluster should error")
	}
	cfg := DefaultConfig(PolicyStock)
	cfg.Replication = 0
	if _, err := New(cl, cfg); err == nil {
		t.Errorf("zero replication should error")
	}
	cfg = DefaultConfig(PolicyStock)
	cfg.BusyThreshold = 0
	if _, err := New(cl, cfg); err == nil {
		t.Errorf("zero busy threshold should error")
	}
	if _, err := New(cl, DefaultConfig(PolicyHistory)); err != nil {
		t.Errorf("history policy should build its placement scheme: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyStock.String() != "HDFS-Stock" || PolicyPT.String() != "HDFS-PT" || PolicyHistory.String() != "HDFS-H" {
		t.Errorf("unexpected policy strings")
	}
	if Policy(9).String() == "" {
		t.Errorf("unknown policy should have a string")
	}
}

func TestCreateBlockDistinctServers(t *testing.T) {
	cl, _ := buildTestCluster(t, 2, 0.05)
	for _, policy := range []Policy{PolicyStock, PolicyPT, PolicyHistory} {
		fs, err := New(cl, DefaultConfig(policy))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			writer := cl.ServerList()[i%cl.NumServers()].ID
			b, err := fs.CreateBlock(writer, 0)
			if err != nil {
				t.Fatalf("%v: %v", policy, err)
			}
			reps := fs.Replicas(b)
			if len(reps) != 3 {
				t.Fatalf("%v: %d replicas, want 3", policy, len(reps))
			}
			seen := map[tenant.ServerID]bool{}
			for _, s := range reps {
				if seen[s] {
					t.Fatalf("%v: duplicate replica server", policy)
				}
				seen[s] = true
			}
		}
		if fs.NumBlocks() != 50 {
			t.Fatalf("NumBlocks = %d", fs.NumBlocks())
		}
	}
}

func TestHistoryPlacementSpansEnvironments(t *testing.T) {
	cl, _ := buildTestCluster(t, 3, 0.05)
	fs, err := New(cl, DefaultConfig(PolicyHistory))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		writer := cl.ServerList()[(i*7)%cl.NumServers()].ID
		b, err := fs.CreateBlock(writer, 0)
		if err != nil {
			t.Fatal(err)
		}
		envs := map[string]bool{}
		for _, s := range fs.Replicas(b) {
			env := cl.Server(s).Tenant.Environment
			if envs[env] {
				t.Fatalf("block %d has two replicas in environment %q", b, env)
			}
			envs[env] = true
		}
	}
}

func TestReplicasOutOfRange(t *testing.T) {
	cl, _ := buildTestCluster(t, 4, 0.05)
	fs, err := New(cl, DefaultConfig(PolicyStock))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Replicas(-1) != nil || fs.Replicas(0) != nil {
		t.Fatalf("out-of-range blocks should have no replicas")
	}
}

func TestAccessSemantics(t *testing.T) {
	// Build a tiny cluster by hand: one always-busy tenant, one idle tenant.
	busy := &tenant.Tenant{
		ID: 0, Environment: "busy", Servers: []tenant.ServerID{0, 1},
		Utilization:               timeseries.New(timeseries.SlotDuration, []float64{0.95, 0.95}),
		ReimagesPerServerMonth:    0.5,
		HarvestableBytesPerServer: 1 << 40,
	}
	idle := &tenant.Tenant{
		ID: 1, Environment: "idle", Servers: []tenant.ServerID{2, 3},
		Utilization:               timeseries.New(timeseries.SlotDuration, []float64{0.05, 0.05}),
		ReimagesPerServerMonth:    0.1,
		HarvestableBytesPerServer: 1 << 40,
	}
	pop, err := tenant.NewPopulation("DC-T", []*tenant.Tenant{busy, idle})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(cl, DefaultConfig(PolicyPT))
	if err != nil {
		t.Fatal(err)
	}
	// Force a block whose replicas are only on the busy tenant's servers.
	fs.replicas = append(fs.replicas, []tenant.ServerID{0, 1})
	if fs.Access(0, 0) {
		t.Fatalf("access should fail when all replicas are busy")
	}
	if !fs.AllReplicasBusy(0, 0) {
		t.Fatalf("AllReplicasBusy should be true")
	}
	// A block with one replica on the idle tenant succeeds.
	fs.replicas = append(fs.replicas, []tenant.ServerID{0, 2})
	if !fs.Access(1, 0) {
		t.Fatalf("access should succeed via the idle replica")
	}
	// Stock never denies.
	fsStock, err := New(cl, DefaultConfig(PolicyStock))
	if err != nil {
		t.Fatal(err)
	}
	fsStock.replicas = append(fsStock.replicas, []tenant.ServerID{0, 1})
	if !fsStock.Access(0, 0) {
		t.Fatalf("stock access should not be denied")
	}
	// A block with no replicas fails everywhere.
	fsStock.replicas = append(fsStock.replicas, nil)
	if fsStock.Access(1, 0) {
		t.Fatalf("a lost block cannot be accessed")
	}
}

func TestPTPlacementAvoidsBusyServers(t *testing.T) {
	busy := &tenant.Tenant{
		ID: 0, Environment: "busy", Servers: []tenant.ServerID{0, 1, 2},
		Utilization:               timeseries.New(timeseries.SlotDuration, []float64{0.95}),
		HarvestableBytesPerServer: 1 << 40,
	}
	idle := &tenant.Tenant{
		ID: 1, Environment: "idle", Servers: []tenant.ServerID{3, 4, 5, 6},
		Utilization:               timeseries.New(timeseries.SlotDuration, []float64{0.05}),
		HarvestableBytesPerServer: 1 << 40,
	}
	pop, err := tenant.NewPopulation("DC-T", []*tenant.Tenant{busy, idle})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(cl, DefaultConfig(PolicyPT))
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.CreateBlock(-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fs.Replicas(b) {
		if cl.Server(s).Tenant.ID == 0 {
			t.Fatalf("PT placement chose a busy server %v", s)
		}
	}
}

func TestSimulateDurabilityHistoryBeatsStock(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping durability comparison in -short mode")
	}
	horizon := 365 * 24 * time.Hour
	// DC-3 is the datacenter with the highest reimaging rates in the
	// characterization, which is where durability differences show up most.
	profile, ok := trace.ProfileByName("DC-3")
	if !ok {
		t.Fatal("DC-3 profile missing")
	}
	run := func(policy Policy, replication int) *DurabilityResult {
		gen := trace.NewGenerator(profile.Scaled(0.1), 7)
		pop, err := gen.Generate()
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
		if err != nil {
			t.Fatal(err)
		}
		events := gen.GenerateReimageEvents(cl.Population, horizon)
		cfg := DefaultConfig(policy)
		cfg.Replication = replication
		cfg.Seed = 99
		fs, err := New(cl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fs.SimulateDurability(30000, events, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	stock3 := run(PolicyStock, 3)
	hist3 := run(PolicyHistory, 3)
	t.Logf("stock R=3: lost=%d/%d events=%d", stock3.LostBlocks, stock3.Blocks, stock3.ReimageEvents)
	t.Logf("hist  R=3: lost=%d/%d events=%d", hist3.LostBlocks, hist3.Blocks, hist3.ReimageEvents)
	if stock3.LostBlocks == 0 {
		t.Fatalf("stock placement should lose blocks under a year of correlated reimages")
	}
	if hist3.LostBlocks >= stock3.LostBlocks {
		t.Fatalf("history placement (%d lost) should beat stock (%d lost)", hist3.LostBlocks, stock3.LostBlocks)
	}
	// Four-way replication loses no more than three-way.
	hist4 := run(PolicyHistory, 4)
	if hist4.LostBlocks > hist3.LostBlocks {
		t.Fatalf("R=4 (%d lost) should not lose more than R=3 (%d lost)", hist4.LostBlocks, hist3.LostBlocks)
	}
}

func TestSimulateDurabilityValidation(t *testing.T) {
	cl, _ := buildTestCluster(t, 8, 0.03)
	fs, err := New(cl, DefaultConfig(PolicyStock))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.SimulateDurability(0, nil, time.Hour); err == nil {
		t.Errorf("zero blocks should error")
	}
	// No events means no losses.
	res, err := fs.SimulateDurability(100, nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostBlocks != 0 || res.LostFraction != 0 {
		t.Fatalf("no reimages should mean no losses, got %+v", res)
	}
}

func TestSimulateAvailabilityHistoryBeatsStock(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping availability comparison in -short mode")
	}
	run := func(policy Policy, target float64) *AvailabilityResult {
		cl, _ := buildTestCluster(t, 9, 0.08)
		cl.ScaleUtilization(target, timeseries.ScaleLinear)
		cfg := DefaultConfig(policy)
		cfg.Seed = 42
		fs, err := New(cl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fs.SimulateAvailability(2000, 20000, 30*24*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	stock := run(PolicyStock, 0.55)
	hist := run(PolicyHistory, 0.55)
	t.Logf("stock: failed=%v hist: failed=%v", stock.FailedFraction, hist.FailedFraction)
	if hist.FailedFraction > stock.FailedFraction {
		t.Fatalf("history placement (%v) should not fail more accesses than stock (%v)",
			hist.FailedFraction, stock.FailedFraction)
	}
}

func TestSimulateAvailabilityValidation(t *testing.T) {
	cl, _ := buildTestCluster(t, 10, 0.03)
	fs, err := New(cl, DefaultConfig(PolicyPT))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.SimulateAvailability(0, 10, time.Hour); err == nil {
		t.Errorf("zero blocks should error")
	}
	if _, err := fs.SimulateAvailability(10, 0, time.Hour); err == nil {
		t.Errorf("zero accesses should error")
	}
	res, err := fs.SimulateAvailability(50, 500, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedFraction < 0 || res.FailedFraction > 1 {
		t.Fatalf("failed fraction out of range: %v", res.FailedFraction)
	}
	if res.MeanUtilization <= 0 {
		t.Fatalf("mean utilization should be positive")
	}
}

func TestSpaceAccountingLimitsPlacement(t *testing.T) {
	// Tiny disks: each server can hold only two blocks.
	small := &tenant.Tenant{
		ID: 0, Environment: "a", Servers: []tenant.ServerID{0, 1, 2},
		Utilization:               timeseries.New(timeseries.SlotDuration, []float64{0.1}),
		HarvestableBytesPerServer: 2 * BlockSizeBytes,
	}
	other := &tenant.Tenant{
		ID: 1, Environment: "b", Servers: []tenant.ServerID{3, 4, 5},
		Utilization:               timeseries.New(timeseries.SlotDuration, []float64{0.1}),
		HarvestableBytesPerServer: 2 * BlockSizeBytes,
	}
	pop, err := tenant.NewPopulation("DC-T", []*tenant.Tenant{small, other})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(cl, DefaultConfig(PolicyStock))
	if err != nil {
		t.Fatal(err)
	}
	// 6 servers * 2 blocks = 12 replica slots = at most 4 blocks at R=3; the
	// random spread may strand one slot, so 3 is also acceptable.
	placed := 0
	for i := 0; i < 10; i++ {
		if _, err := fs.CreateBlock(-1, 0); err != nil {
			break
		}
		placed++
	}
	if placed < 3 || placed > 4 {
		t.Fatalf("placed %d blocks, want 3 or 4 given the disk capacity", placed)
	}
}
