package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightedChoiceAllZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := WeightedChoice(rng, []float64{0, 0, 0}); got != -1 {
		t.Fatalf("WeightedChoice all-zero = %d, want -1", got)
	}
	if got := WeightedChoice(rng, nil); got != -1 {
		t.Fatalf("WeightedChoice(nil) = %d, want -1", got)
	}
}

func TestWeightedChoiceNegativeIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		got := WeightedChoice(rng, []float64{-5, 1, -3})
		if got != 1 {
			t.Fatalf("WeightedChoice should only pick positive weights, got %d", got)
		}
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	weights := []float64{1, 3}
	counts := make([]int, 2)
	n := 20000
	for i := 0; i < n; i++ {
		counts[WeightedChoice(rng, weights)]++
	}
	frac := float64(counts[1]) / float64(n)
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("weight-3 option selected %v of the time, want ~0.75", frac)
	}
}

func TestWeightedChoiceValidIndexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(raw []uint8) bool {
		weights := make([]float64, len(raw))
		anyPositive := false
		for i, r := range raw {
			weights[i] = float64(r)
			if r > 0 {
				anyPositive = true
			}
		}
		idx := WeightedChoice(rng, weights)
		if !anyPositive {
			return idx == -1
		}
		return idx >= 0 && idx < len(weights) && weights[idx] > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	weights := []float64{1, 2, 3, 4}
	idxs := WeightedSample(rng, weights, 3)
	if len(idxs) != 3 {
		t.Fatalf("sample size = %d, want 3", len(idxs))
	}
	seen := map[int]bool{}
	for _, i := range idxs {
		if seen[i] {
			t.Fatalf("duplicate index %d in sample", i)
		}
		seen[i] = true
	}
}

func TestWeightedSampleTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	idxs := WeightedSample(rng, []float64{0, 1, 0}, 5)
	if len(idxs) != 1 || idxs[0] != 1 {
		t.Fatalf("sample = %v, want [1]", idxs)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var o Online
	for i := 0; i < 50000; i++ {
		o.Add(Exponential(rng, 300))
	}
	if math.Abs(o.Mean()-300) > 10 {
		t.Fatalf("exponential mean = %v, want ~300", o.Mean())
	}
	if Exponential(rng, 0) != 0 || Exponential(rng, -1) != 0 {
		t.Errorf("non-positive mean should produce 0")
	}
}

func TestPoissonSmallMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var o Online
	for i := 0; i < 50000; i++ {
		o.Add(float64(Poisson(rng, 4)))
	}
	if math.Abs(o.Mean()-4) > 0.1 {
		t.Fatalf("poisson mean = %v, want ~4", o.Mean())
	}
}

func TestPoissonLargeMeanAndEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var o Online
	for i := 0; i < 5000; i++ {
		o.Add(float64(Poisson(rng, 1000)))
	}
	if math.Abs(o.Mean()-1000) > 10 {
		t.Fatalf("poisson(1000) mean = %v", o.Mean())
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -2) != 0 {
		t.Errorf("non-positive mean should produce 0")
	}
}

func TestLogNormalPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 1000; i++ {
		if LogNormal(rng, 1, 0.5) <= 0 {
			t.Fatalf("lognormal should be positive")
		}
	}
}

func TestBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		v := Bounded(rng, 2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Bounded out of range: %v", v)
		}
	}
	if Bounded(rng, 3, 3) != 3 {
		t.Errorf("degenerate range should return lo")
	}
}

func TestPick(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	if _, err := Pick(rng, 0); err == nil {
		t.Errorf("Pick(0) should error")
	}
	for i := 0; i < 100; i++ {
		idx, err := Pick(rng, 7)
		if err != nil || idx < 0 || idx >= 7 {
			t.Fatalf("Pick out of range: %d, %v", idx, err)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	if Bernoulli(rng, 0) {
		t.Errorf("p=0 should be false")
	}
	if !Bernoulli(rng, 1) {
		t.Errorf("p=1 should be true")
	}
	hits := 0
	n := 20000
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) hit rate = %v", frac)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	xs := []int{1, 2, 3, 4, 5}
	Shuffle(rng, xs)
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	for i := 1; i <= 5; i++ {
		if !seen[i] {
			t.Fatalf("shuffle lost element %d: %v", i, xs)
		}
	}
}
