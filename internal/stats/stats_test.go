package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 {
		t.Errorf("Min = %v, want -1", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v, want 7", Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Errorf("Min/Max of empty should be 0")
	}
}

func TestVarianceConstant(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	if got := Variance(xs); got != 0 {
		t.Fatalf("Variance of constant = %v, want 0", got)
	}
}

func TestStdDevKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if got := CoefficientOfVariation([]float64{1, 1, 1}); got != 0 {
		t.Errorf("CV of constant = %v, want 0", got)
	}
	if got := CoefficientOfVariation([]float64{0, 0}); got != 0 {
		t.Errorf("CV with zero mean = %v, want 0", got)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Errorf("expected error for empty sample")
	}
	if _, err := Percentile([]float64{1}, -3); err == nil {
		t.Errorf("expected error for p < 0")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Errorf("expected error for p > 100")
	}
}

func TestPercentileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	_, _ = Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
}

func TestMustPercentile(t *testing.T) {
	if got := MustPercentile(nil, 99); got != 0 {
		t.Errorf("MustPercentile(nil) = %v, want 0", got)
	}
	if got := MustPercentile([]float64{1, 2}, 100); got != 2 {
		t.Errorf("MustPercentile = %v, want 2", got)
	}
}

func TestQuantiles(t *testing.T) {
	qs, err := Quantiles([]float64{1, 2, 3, 4, 5}, 0, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Fatalf("Quantiles = %v", qs)
	}
	if _, err := Quantiles(nil, 50); err == nil {
		t.Errorf("expected error for empty input")
	}
	if _, err := Quantiles([]float64{1}, 150); err == nil {
		t.Errorf("expected error for out-of-range percentile")
	}
}

func TestCDF(t *testing.T) {
	points := CDF([]float64{1, 1, 2, 3})
	if len(points) != 3 {
		t.Fatalf("CDF collapsed points = %d, want 3", len(points))
	}
	if points[0].Value != 1 || !almostEqual(points[0].Cumulative, 0.5, 1e-12) {
		t.Errorf("first point = %+v", points[0])
	}
	if points[2].Value != 3 || !almostEqual(points[2].Cumulative, 1, 1e-12) {
		t.Errorf("last point = %+v", points[2])
	}
	if CDF(nil) != nil {
		t.Errorf("CDF(nil) should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Errorf("CDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Errorf("CDFAt(0) = %v, want 0", got)
	}
	if got := CDFAt(nil, 1); got != 0 {
		t.Errorf("CDFAt(nil) = %v, want 0", got)
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		points := CDF(xs)
		prevV := math.Inf(-1)
		prevC := 0.0
		for _, p := range points {
			if p.Value <= prevV || p.Cumulative < prevC {
				return false
			}
			prevV, prevC = p.Value, p.Cumulative
		}
		return almostEqual(points[len(points)-1].Cumulative, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Underflow, h.Overflow)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Errorf("bucket0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // 2
		t.Errorf("bucket1 = %d, want 1", h.Buckets[1])
	}
	if h.Buckets[4] != 1 { // 9.99
		t.Errorf("bucket4 = %d, want 1", h.Buckets[4])
	}
	if got := h.BucketCenter(0); got != 1 {
		t.Errorf("BucketCenter(0) = %v, want 1", got)
	}
	if got := h.Fraction(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Fraction(0) = %v, want 0.5", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Errorf("expected error for zero buckets")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Errorf("expected error for empty range")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		o.Add(xs[i])
	}
	if o.N() != len(xs) {
		t.Fatalf("N = %d", o.N())
	}
	if !almostEqual(o.Mean(), Mean(xs), 1e-9) {
		t.Errorf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !almostEqual(o.Variance(), Variance(xs), 1e-6) {
		t.Errorf("online var %v vs batch %v", o.Variance(), Variance(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) {
		t.Errorf("online min/max mismatch")
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.StdDev() != 0 {
		t.Errorf("empty accumulator should report zeros")
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 3}
	if !Normalize(xs) {
		t.Fatalf("Normalize returned false")
	}
	if !almostEqual(xs[0], 0.25, 1e-12) || !almostEqual(xs[1], 0.75, 1e-12) {
		t.Errorf("normalized = %v", xs)
	}
	zero := []float64{0, 0}
	if Normalize(zero) {
		t.Errorf("Normalize of zero-sum should return false")
	}
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{3, 9, -2, 9}
	if ArgMax(xs) != 1 {
		t.Errorf("ArgMax = %d, want 1 (first max)", ArgMax(xs))
	}
	if ArgMin(xs) != 2 {
		t.Errorf("ArgMin = %d, want 2", ArgMin(xs))
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Errorf("ArgMax/ArgMin of empty should be -1")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Errorf("Clamp misbehaves")
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		p := float64(pRaw) / 255 * 100
		v, err := Percentile(xs, p)
		if err != nil {
			return false
		}
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMatchesIndividualStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	mean, max, cv := Summary(xs)
	if !almostEqual(mean, Mean(xs), 1e-12) {
		t.Errorf("Summary mean = %v, want %v", mean, Mean(xs))
	}
	if max != Max(xs) {
		t.Errorf("Summary max = %v, want %v", max, Max(xs))
	}
	if !almostEqual(cv, CoefficientOfVariation(xs), 1e-12) {
		t.Errorf("Summary cv = %v, want %v", cv, CoefficientOfVariation(xs))
	}
	if m, mx, c := Summary(nil); m != 0 || mx != 0 || c != 0 {
		t.Errorf("Summary(nil) = %v %v %v, want zeros", m, mx, c)
	}
	if _, _, c := Summary([]float64{0, 0}); c != 0 {
		t.Errorf("zero-mean cv = %v, want 0", c)
	}
}
