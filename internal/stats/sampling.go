package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// WeightedChoice picks an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero. If all
// weights are zero it returns -1.
//
// This is the primitive behind the paper's probabilistic class selection
// ("pick 1 class probabilistically proportional to weighted headroom",
// Algorithm 1 lines 10 and 13) and the RM's load balancing across heartbeating
// servers.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	target := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	// Floating point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// WeightedSample picks k distinct indices without replacement, each draw
// proportional to the remaining weights. It returns fewer than k indices if
// fewer than k weights are positive.
func WeightedSample(rng *rand.Rand, weights []float64, k int) []int {
	remaining := make([]float64, len(weights))
	copy(remaining, weights)
	var out []int
	for len(out) < k {
		idx := WeightedChoice(rng, remaining)
		if idx < 0 {
			break
		}
		out = append(out, idx)
		remaining[idx] = 0
	}
	return out
}

// Exponential draws an exponentially distributed value with the given mean.
// It is used for Poisson inter-arrival times of batch jobs (§6.1 uses a mean
// of 300 seconds).
func Exponential(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// Poisson draws a Poisson-distributed count with the given mean using
// Knuth's algorithm for small means and a normal approximation for large ones.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		// Normal approximation; adequate for workload synthesis.
		v := rng.NormFloat64()*math.Sqrt(mean) + mean
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		k++
		p *= rng.Float64()
		if p <= l {
			return k - 1
		}
	}
}

// LogNormal draws a log-normally distributed value given the mean and
// standard deviation of the underlying normal. Used for synthetic task
// durations, which in production are heavy-tailed.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}

// Bounded draws a uniform value in [lo, hi).
func Bounded(rng *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Float64()*(hi-lo)
}

// Shuffle permutes the ints in place.
func Shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Pick returns a uniformly random element index of a slice of length n,
// or an error if n <= 0.
func Pick(rng *rand.Rand, n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("stats: cannot pick from %d elements", n)
	}
	return rng.Intn(n), nil
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// IdentityPerm grows buf to n elements holding 0..n-1, reusing its capacity.
// Together with PermNext it forms an allocation-free partial Fisher–Yates
// shuffle: callers walk i = 0..n-1 calling PermNext and may stop early,
// having consumed only as much randomness (and work) as positions visited.
func IdentityPerm(buf []int32, n int) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = int32(i)
	}
	return buf
}

// PermNext performs one partial Fisher–Yates step: it swaps buf[i] with a
// uniformly random element of buf[i:] and returns the value now at buf[i].
// Visiting i = 0, 1, 2, ... therefore yields a uniformly random permutation
// of buf one element at a time.
func PermNext(rng *rand.Rand, buf []int32, i int) int32 {
	j := i + rng.Intn(len(buf)-i)
	buf[i], buf[j] = buf[j], buf[i]
	return buf[i]
}
