// Package stats provides small statistical helpers used throughout the
// harvesting simulator: percentiles, CDFs, histograms, online accumulators,
// and deterministic random-number utilities.
//
// All functions are purely computational and deterministic; any randomness is
// injected by the caller through *rand.Rand so that experiments are
// reproducible.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary returns the mean, maximum, and coefficient of variation of xs in
// one pass. It exists for hot callers that need all three (the re-clustering
// drift check runs it over every tenant's history window every refresh) and
// matches Mean/Max/CoefficientOfVariation exactly for the values they agree
// on. An empty slice returns all zeros.
func Summary(xs []float64) (mean, max, cv float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	sum := 0.0
	max = xs[0]
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	mean = sum / float64(len(xs))
	if mean == 0 {
		return mean, max, 0
	}
	sq := 0.0
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	return mean, max, math.Sqrt(sq/float64(len(xs))) / mean
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoefficientOfVariation returns StdDev/Mean, or 0 when the mean is zero.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// MustPercentile is Percentile but returns 0 on error. Convenient in
// reporting code where an empty series simply renders as zero.
func MustPercentile(xs []float64, p float64) float64 {
	v, err := Percentile(xs, p)
	if err != nil {
		return 0
	}
	return v
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the requested percentiles in one pass over a single sort.
func Quantiles(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			return nil, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out, nil
}

// CDFPoint is a single point of an empirical cumulative distribution.
type CDFPoint struct {
	Value      float64 // sample value
	Cumulative float64 // fraction of samples <= Value, in (0, 1]
}

// CDF returns the empirical CDF of xs as a sorted sequence of points.
// Duplicate values are collapsed into a single point.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values to the last index of the run.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{Value: sorted[i], Cumulative: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates the empirical CDF of xs at value v (fraction of samples <= v).
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, x := range xs {
		if x <= v {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	// Underflow and Overflow count samples outside [Lo, Hi).
	Underflow, Overflow int
	total               int
}

// NewHistogram creates a histogram with n fixed-width buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}, nil
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Lo {
		h.Underflow++
		return
	}
	if x >= h.Hi {
		h.Overflow++
		return
	}
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of in-range samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	inRange := h.total - h.Underflow - h.Overflow
	if inRange == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(inRange)
}

// Online is an online mean/variance accumulator (Welford's algorithm).
// The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records a sample.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of samples recorded.
func (o *Online) N() int { return o.n }

// Mean returns the running mean.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest sample seen (0 when empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample seen (0 when empty).
func (o *Online) Max() float64 { return o.max }

// Normalize scales xs in place so it sums to 1. A zero-sum slice is left
// unchanged and reported via the boolean return.
func Normalize(xs []float64) bool {
	sum := Sum(xs)
	if sum == 0 {
		return false
	}
	for i := range xs {
		xs[i] /= sum
	}
	return true
}

// ArgMax returns the index of the largest element, or -1 for empty input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element, or -1 for empty input.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
