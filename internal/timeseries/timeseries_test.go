package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstants(t *testing.T) {
	if SlotsPerDay != 720 {
		t.Fatalf("SlotsPerDay = %d, want 720", SlotsPerDay)
	}
	if SlotsPerMonth != 21600 {
		t.Fatalf("SlotsPerMonth = %d, want 21600", SlotsPerMonth)
	}
}

func TestAtWrapsAround(t *testing.T) {
	s := New(time.Minute, []float64{0.1, 0.2, 0.3})
	if got := s.At(0); got != 0.1 {
		t.Errorf("At(0) = %v", got)
	}
	if got := s.At(time.Minute); got != 0.2 {
		t.Errorf("At(1m) = %v", got)
	}
	if got := s.At(3 * time.Minute); got != 0.1 {
		t.Errorf("At(3m) should wrap to first slot, got %v", got)
	}
	if got := s.At(4 * time.Minute); got != 0.2 {
		t.Errorf("At(4m) should wrap, got %v", got)
	}
}

func TestAtEmpty(t *testing.T) {
	s := NewZero(time.Minute, 0)
	if s.At(time.Hour) != 0 {
		t.Errorf("empty series should return 0")
	}
	if s.Slot(5) != 0 {
		t.Errorf("empty series slot should return 0")
	}
}

func TestSlotNegativeWraps(t *testing.T) {
	s := New(time.Minute, []float64{1, 2, 3})
	if got := s.Slot(-1); got != 3 {
		t.Errorf("Slot(-1) = %v, want 3", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(time.Minute, []float64{1, 2})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Fatalf("Clone should not share storage")
	}
}

func TestBasicStats(t *testing.T) {
	s := New(time.Minute, []float64{0.2, 0.4, 0.6})
	if math.Abs(s.Mean()-0.4) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Peak() != 0.6 || s.Min() != 0.2 {
		t.Errorf("Peak/Min wrong")
	}
	if s.Percentile(100) != 0.6 {
		t.Errorf("Percentile(100) = %v", s.Percentile(100))
	}
	if s.StdDev() <= 0 {
		t.Errorf("StdDev should be positive")
	}
	if s.Duration() != 3*time.Minute {
		t.Errorf("Duration = %v", s.Duration())
	}
}

func TestClampUnit(t *testing.T) {
	s := New(time.Minute, []float64{-0.5, 0.5, 1.5})
	s.ClampUnit()
	if s.Values[0] != 0 || s.Values[1] != 0.5 || s.Values[2] != 1 {
		t.Fatalf("ClampUnit = %v", s.Values)
	}
}

func TestAverage(t *testing.T) {
	a := New(time.Minute, []float64{0.2, 0.4})
	b := New(time.Minute, []float64{0.4, 0.8})
	avg, err := Average([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg.Values[0]-0.3) > 1e-12 || math.Abs(avg.Values[1]-0.6) > 1e-12 {
		t.Fatalf("Average = %v", avg.Values)
	}
}

func TestAverageErrors(t *testing.T) {
	if _, err := Average(nil); err == nil {
		t.Errorf("Average(nil) should error")
	}
	a := New(time.Minute, []float64{1})
	b := New(time.Minute, []float64{1, 2})
	if _, err := Average([]*Series{a, b}); err == nil {
		t.Errorf("length mismatch should error")
	}
	c := New(time.Second, []float64{1})
	if _, err := Average([]*Series{a, c}); err == nil {
		t.Errorf("interval mismatch should error")
	}
}

func TestScaleLinearSaturates(t *testing.T) {
	s := New(time.Minute, []float64{0.3, 0.8})
	scaled := s.ScaleLinearBy(2)
	if scaled.Values[0] != 0.6 {
		t.Errorf("linear scale value = %v", scaled.Values[0])
	}
	if scaled.Values[1] != 1 {
		t.Errorf("linear scale should saturate at 1, got %v", scaled.Values[1])
	}
	if s.Values[1] != 0.8 {
		t.Errorf("original should be untouched")
	}
}

func TestScaleRootRaisesLowMoreThanHigh(t *testing.T) {
	s := New(time.Minute, []float64{0.1, 0.9})
	scaled := s.ScaleRootBy(2) // square root
	lowGain := scaled.Values[0] - s.Values[0]
	highGain := scaled.Values[1] - s.Values[1]
	if lowGain <= highGain {
		t.Fatalf("root scaling should raise low values more: lowGain=%v highGain=%v", lowGain, highGain)
	}
	// degree <= 0 is a no-op copy
	same := s.ScaleRootBy(0)
	if same.Values[0] != s.Values[0] {
		t.Errorf("degree<=0 should be identity")
	}
}

func TestScaleToMeanLinear(t *testing.T) {
	s := New(time.Minute, []float64{0.1, 0.2, 0.3, 0.4})
	for _, target := range []float64{0.1, 0.3, 0.5, 0.7} {
		scaled := s.ScaleToMean(target, ScaleLinear)
		if math.Abs(scaled.Mean()-target) > 0.02 {
			t.Errorf("linear ScaleToMean(%v) produced mean %v", target, scaled.Mean())
		}
	}
}

func TestScaleToMeanRoot(t *testing.T) {
	s := New(time.Minute, []float64{0.1, 0.2, 0.3, 0.4})
	for _, target := range []float64{0.2, 0.4, 0.6} {
		scaled := s.ScaleToMean(target, ScaleRoot)
		if math.Abs(scaled.Mean()-target) > 0.02 {
			t.Errorf("root ScaleToMean(%v) produced mean %v", target, scaled.Mean())
		}
	}
}

func TestScaleToMeanZeroSeries(t *testing.T) {
	s := NewZero(time.Minute, 4)
	scaled := s.ScaleToMean(0.5, ScaleLinear)
	if math.Abs(scaled.Mean()-0.5) > 1e-9 {
		t.Fatalf("zero series should be filled to target, got %v", scaled.Mean())
	}
}

func TestScaleToMeanClampsTarget(t *testing.T) {
	s := New(time.Minute, []float64{0.5, 0.5})
	scaled := s.ScaleToMean(1.7, ScaleLinear)
	if scaled.Peak() > 1 {
		t.Fatalf("scaled values must stay within [0,1]")
	}
}

func TestScalingMethodString(t *testing.T) {
	if ScaleLinear.String() != "linear" || ScaleRoot.String() != "root" {
		t.Errorf("unexpected String values")
	}
	if ScalingMethod(42).String() == "" {
		t.Errorf("unknown method should still produce a string")
	}
}

func TestResampleCoarsen(t *testing.T) {
	s := New(time.Minute, []float64{0.2, 0.4, 0.6, 0.8})
	out, err := s.Resample(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || math.Abs(out.Values[0]-0.3) > 1e-12 || math.Abs(out.Values[1]-0.7) > 1e-12 {
		t.Fatalf("coarsened = %v", out.Values)
	}
}

func TestResampleRefine(t *testing.T) {
	s := New(2*time.Minute, []float64{0.2, 0.4})
	out, err := s.Resample(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.2, 0.4, 0.4}
	for i, w := range want {
		if out.Values[i] != w {
			t.Fatalf("refined = %v, want %v", out.Values, want)
		}
	}
}

func TestResampleErrorsAndIdentity(t *testing.T) {
	s := New(2*time.Minute, []float64{0.2, 0.4})
	if _, err := s.Resample(0); err == nil {
		t.Errorf("zero interval should error")
	}
	if _, err := s.Resample(3 * time.Minute); err == nil {
		t.Errorf("non-multiple coarsening should error")
	}
	if _, err := s.Resample(90 * time.Second); err == nil {
		t.Errorf("non-divisor refinement should error")
	}
	same, err := s.Resample(2 * time.Minute)
	if err != nil || same.Len() != 2 {
		t.Errorf("identity resample failed: %v", err)
	}
}

func TestWindow(t *testing.T) {
	s := New(time.Minute, []float64{1, 2, 3, 4})
	w, err := s.Window(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 || w.Values[0] != 2 || w.Values[1] != 3 {
		t.Fatalf("window = %v", w.Values)
	}
	if _, err := s.Window(-1, 2); err == nil {
		t.Errorf("negative start should error")
	}
	if _, err := s.Window(2, 9); err == nil {
		t.Errorf("end beyond length should error")
	}
	if _, err := s.Window(3, 2); err == nil {
		t.Errorf("inverted window should error")
	}
}

func TestAddSeries(t *testing.T) {
	a := New(time.Minute, []float64{1, 2})
	b := New(time.Minute, []float64{3, 4})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Values[0] != 4 || sum.Values[1] != 6 {
		t.Fatalf("sum = %v", sum.Values)
	}
	c := New(time.Minute, []float64{1})
	if _, err := a.Add(c); err == nil {
		t.Errorf("length mismatch should error")
	}
}

func TestScaleLinearPreservesBoundsProperty(t *testing.T) {
	f := func(raw []uint8, factorRaw uint8) bool {
		values := make([]float64, len(raw))
		for i, r := range raw {
			values[i] = float64(r) / 255
		}
		factor := float64(factorRaw)/32 + 0.01
		s := New(time.Minute, values)
		scaled := s.ScaleLinearBy(factor)
		for _, v := range scaled.Values {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTail(t *testing.T) {
	s := New(time.Minute, []float64{1, 2, 3, 4, 5})
	tail := s.Tail(2)
	if tail.Len() != 2 || tail.Values[0] != 4 || tail.Values[1] != 5 {
		t.Fatalf("Tail(2) = %v", tail.Values)
	}
	if tail.Interval != time.Minute {
		t.Errorf("Tail interval = %v, want 1m", tail.Interval)
	}
	// Tail is a copy, not an alias.
	tail.Values[0] = 99
	if s.Values[3] != 4 {
		t.Error("Tail aliases the source series")
	}
	if all := s.Tail(10); all.Len() != 5 {
		t.Errorf("Tail(10) len = %d, want the whole series", all.Len())
	}
	if none := s.Tail(0); none.Len() != 0 {
		t.Errorf("Tail(0) len = %d, want 0", none.Len())
	}
	if neg := s.Tail(-3); neg.Len() != 0 {
		t.Errorf("Tail(-3) len = %d, want 0", neg.Len())
	}
}
