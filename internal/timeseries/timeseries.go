// Package timeseries holds utilization time series and the transformations
// the harvesting pipeline applies to them: per-slot aggregation across a
// tenant's servers, linear and nth-root utilization scaling (used by the
// simulator to sweep the utilization spectrum), and resampling.
//
// A series stores one sample per fixed-width slot. The paper samples CPU
// utilization every two minutes and represents each primary tenant by the
// "average server" series over one month.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"time"

	"harvest/internal/stats"
)

// SlotDuration is the telemetry sampling interval used throughout the paper.
const SlotDuration = 2 * time.Minute

// SlotsPerDay is the number of 2-minute slots in a day.
const SlotsPerDay = int(24 * time.Hour / SlotDuration)

// SlotsPerMonth is the number of 2-minute slots in a 30-day month, the window
// the clustering service analyses.
const SlotsPerMonth = 30 * SlotsPerDay

// ErrLengthMismatch is returned when combining series of different lengths.
var ErrLengthMismatch = errors.New("timeseries: length mismatch")

// Series is a fixed-interval utilization time series. Values are utilization
// fractions in [0, 1] unless stated otherwise by the producer.
type Series struct {
	// Interval is the slot width.
	Interval time.Duration
	// Values holds one sample per slot.
	Values []float64
}

// New creates a series with the given slot width and values. The values slice
// is used directly (not copied).
func New(interval time.Duration, values []float64) *Series {
	return &Series{Interval: interval, Values: values}
}

// NewZero creates a zero-filled series of n slots.
func NewZero(interval time.Duration, n int) *Series {
	return &Series{Interval: interval, Values: make([]float64, n)}
}

// Len returns the number of slots.
func (s *Series) Len() int { return len(s.Values) }

// Duration returns the total time the series spans.
func (s *Series) Duration() time.Duration {
	return time.Duration(len(s.Values)) * s.Interval
}

// At returns the value of the slot containing offset t from the start of the
// series. Offsets beyond the end wrap around, which lets the simulator replay
// a one-month trace indefinitely.
func (s *Series) At(t time.Duration) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	idx := int(t/s.Interval) % len(s.Values)
	if idx < 0 {
		idx += len(s.Values)
	}
	return s.Values[idx]
}

// Slot returns the value at slot index i, wrapping around the series length.
func (s *Series) Slot(i int) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	i %= len(s.Values)
	if i < 0 {
		i += len(s.Values)
	}
	return s.Values[i]
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	values := make([]float64, len(s.Values))
	copy(values, s.Values)
	return &Series{Interval: s.Interval, Values: values}
}

// Mean returns the average value of the series.
func (s *Series) Mean() float64 { return stats.Mean(s.Values) }

// Peak returns the maximum value of the series.
func (s *Series) Peak() float64 { return stats.Max(s.Values) }

// Min returns the minimum value of the series.
func (s *Series) Min() float64 { return stats.Min(s.Values) }

// StdDev returns the standard deviation of the series.
func (s *Series) StdDev() float64 { return stats.StdDev(s.Values) }

// Percentile returns the p-th percentile of the series values.
func (s *Series) Percentile(p float64) float64 { return stats.MustPercentile(s.Values, p) }

// ClampUnit clamps every value into [0, 1] in place and returns the receiver.
func (s *Series) ClampUnit() *Series {
	for i, v := range s.Values {
		s.Values[i] = stats.Clamp(v, 0, 1)
	}
	return s
}

// Average returns the element-wise average of the given series, which is how
// the paper derives the "average server" series of a primary tenant from its
// individual servers. All series must have the same length and interval.
func Average(series []*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, errors.New("timeseries: no series to average")
	}
	n := series[0].Len()
	interval := series[0].Interval
	for _, s := range series {
		if s.Len() != n {
			return nil, fmt.Errorf("%w: %d vs %d slots", ErrLengthMismatch, s.Len(), n)
		}
		if s.Interval != interval {
			return nil, fmt.Errorf("timeseries: interval mismatch: %v vs %v", s.Interval, interval)
		}
	}
	out := NewZero(interval, n)
	for _, s := range series {
		for i, v := range s.Values {
			out.Values[i] += v
		}
	}
	for i := range out.Values {
		out.Values[i] /= float64(len(series))
	}
	return out, nil
}

// ScalingMethod selects how the simulator scales a utilization series to a
// target average utilization when exploring the utilization spectrum (§6.1).
type ScalingMethod int

const (
	// ScaleLinear multiplies the series by a constant factor and saturates
	// at 100%. This preserves (and at high factors amplifies) the temporal
	// variation of each tenant.
	ScaleLinear ScalingMethod = iota
	// ScaleRoot applies an nth-root transform, which moves high utilizations
	// less than low ones and therefore reduces saturation.
	ScaleRoot
)

// String implements fmt.Stringer.
func (m ScalingMethod) String() string {
	switch m {
	case ScaleLinear:
		return "linear"
	case ScaleRoot:
		return "root"
	default:
		return fmt.Sprintf("ScalingMethod(%d)", int(m))
	}
}

// ScaleLinearBy returns a copy of s multiplied by factor and saturated at 1.
func (s *Series) ScaleLinearBy(factor float64) *Series {
	out := s.Clone()
	for i, v := range out.Values {
		out.Values[i] = stats.Clamp(v*factor, 0, 1)
	}
	return out
}

// ScaleRootBy returns a copy of s transformed by x -> x^(1/degree) blended so
// that the series mean moves toward the target mean implied by the degree.
// Degrees above 1 raise utilization (roots of values in [0,1] are larger);
// degrees in (0,1) lower it.
func (s *Series) ScaleRootBy(degree float64) *Series {
	out := s.Clone()
	if degree <= 0 {
		return out
	}
	for i, v := range out.Values {
		if v <= 0 {
			continue
		}
		out.Values[i] = stats.Clamp(math.Pow(v, 1/degree), 0, 1)
	}
	return out
}

// ScaleToMean rescales the series so that its mean becomes approximately the
// target, using the requested method. It searches for the scaling parameter
// with bisection because saturation (linear) and the root transform make the
// mapping non-linear. The returned series is a new copy.
func (s *Series) ScaleToMean(target float64, method ScalingMethod) *Series {
	target = stats.Clamp(target, 0, 1)
	current := s.Mean()
	if current == 0 {
		// A flat-zero series cannot be scaled multiplicatively; fill uniformly.
		out := s.Clone()
		for i := range out.Values {
			out.Values[i] = target
		}
		return out
	}
	apply := func(param float64) *Series {
		switch method {
		case ScaleRoot:
			return s.ScaleRootBy(param)
		default:
			return s.ScaleLinearBy(param)
		}
	}
	lo, hi := 1e-3, 1e3
	var result *Series
	for iter := 0; iter < 60; iter++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: parameter is multiplicative
		result = apply(mid)
		m := result.Mean()
		if math.Abs(m-target) < 1e-4 {
			return result
		}
		if m < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return result
}

// Resample converts the series to a new slot width by averaging (when
// coarsening) or repeating (when refining) samples.
func (s *Series) Resample(newInterval time.Duration) (*Series, error) {
	if newInterval <= 0 {
		return nil, fmt.Errorf("timeseries: invalid interval %v", newInterval)
	}
	if newInterval == s.Interval {
		return s.Clone(), nil
	}
	if newInterval > s.Interval {
		if newInterval%s.Interval != 0 {
			return nil, fmt.Errorf("timeseries: %v is not a multiple of %v", newInterval, s.Interval)
		}
		ratio := int(newInterval / s.Interval)
		n := len(s.Values) / ratio
		out := NewZero(newInterval, n)
		for i := 0; i < n; i++ {
			out.Values[i] = stats.Mean(s.Values[i*ratio : (i+1)*ratio])
		}
		return out, nil
	}
	if s.Interval%newInterval != 0 {
		return nil, fmt.Errorf("timeseries: %v is not a divisor of %v", newInterval, s.Interval)
	}
	ratio := int(s.Interval / newInterval)
	out := NewZero(newInterval, len(s.Values)*ratio)
	for i, v := range s.Values {
		for j := 0; j < ratio; j++ {
			out.Values[i*ratio+j] = v
		}
	}
	return out, nil
}

// Tail returns the sub-series holding the last n slots (the whole series
// when n exceeds its length). Telemetry bootstrap uses it to seed live
// rings with the trailing window of a historical trace.
func (s *Series) Tail(n int) *Series {
	if n >= len(s.Values) {
		return s.Clone()
	}
	if n < 0 {
		n = 0
	}
	values := make([]float64, n)
	copy(values, s.Values[len(s.Values)-n:])
	return &Series{Interval: s.Interval, Values: values}
}

// Window returns the sub-series covering slots [start, end).
func (s *Series) Window(start, end int) (*Series, error) {
	if start < 0 || end > len(s.Values) || start > end {
		return nil, fmt.Errorf("timeseries: window [%d, %d) out of range (len %d)", start, end, len(s.Values))
	}
	values := make([]float64, end-start)
	copy(values, s.Values[start:end])
	return &Series{Interval: s.Interval, Values: values}, nil
}

// Add returns the element-wise sum of s and other (same length required).
func (s *Series) Add(other *Series) (*Series, error) {
	if s.Len() != other.Len() {
		return nil, ErrLengthMismatch
	}
	out := s.Clone()
	for i, v := range other.Values {
		out.Values[i] += v
	}
	return out, nil
}
