package latency

import (
	"testing"
	"time"
)

func newTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultModelConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	cfg := DefaultModelConfig()
	cfg.BaseTail = 0
	if _, err := NewModel(cfg, 1); err == nil {
		t.Errorf("zero base tail should error")
	}
	cfg = DefaultModelConfig()
	cfg.SaturationPoint = 1.5
	if _, err := NewModel(cfg, 1); err == nil {
		t.Errorf("saturation point above 1 should error")
	}
}

func TestUnloadedTailNearBase(t *testing.T) {
	m := newTestModel(t)
	tail := m.ServerTail(0.3, 0, 0)
	base := DefaultModelConfig().BaseTail
	if tail < base/2 || tail > 2*base {
		t.Fatalf("lightly loaded tail %v should be near the base %v", tail, base)
	}
}

func TestInterferenceInflatesTail(t *testing.T) {
	m := newTestModel(t)
	clean := m.ServerTail(0.4, 0.1, 0)       // combined 0.5, below saturation
	contended := m.ServerTail(0.4, 0.55, 0)  // combined 0.95, above saturation
	saturated := m.ServerTail(0.4, 0.6, 0.2) // combined 1.2
	if contended <= clean {
		t.Fatalf("interference beyond the saturation point should inflate the tail: %v vs %v", contended, clean)
	}
	if saturated <= contended {
		t.Fatalf("more pressure should mean a longer tail: %v vs %v", saturated, contended)
	}
}

func TestMonotonicInPrimaryUtilization(t *testing.T) {
	cfg := DefaultModelConfig()
	cfg.Jitter = 0 // deterministic for the monotonicity check
	m, err := NewModel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := time.Duration(0)
	for _, u := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95} {
		tail := m.ServerTail(u, 0, 0)
		if tail < prev {
			t.Fatalf("tail should not decrease with utilization (u=%v)", u)
		}
		prev = tail
	}
}

func TestNegativeInputsClamped(t *testing.T) {
	cfg := DefaultModelConfig()
	cfg.Jitter = 0
	m, err := NewModel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.ServerTail(-1, -1, -1) != m.ServerTail(0, 0, 0) {
		t.Fatalf("negative inputs should clamp to zero")
	}
}

func TestRecorderSeries(t *testing.T) {
	m := newTestModel(t)
	rec := NewRecorder(m)
	// Two samples of two servers each.
	rec.Observe(0.3, 0, 0)
	rec.Observe(0.5, 0, 0)
	rec.Flush()
	rec.Observe(0.3, 0.6, 0)
	rec.Observe(0.5, 0.6, 0)
	rec.Flush()
	if len(rec.Series) != 2 {
		t.Fatalf("series length = %d, want 2", len(rec.Series))
	}
	if rec.Series[1] <= rec.Series[0] {
		t.Fatalf("the interfered sample should have a higher average tail")
	}
	if rec.Average() <= 0 || rec.Max() < rec.Average() || rec.Min() > rec.Average() {
		t.Fatalf("aggregate statistics inconsistent: avg=%v min=%v max=%v", rec.Average(), rec.Min(), rec.Max())
	}
	// Flushing an empty sample changes nothing.
	rec.Flush()
	if len(rec.Series) != 2 {
		t.Fatalf("empty flush should not append")
	}
}

func TestRecorderEmptyAggregates(t *testing.T) {
	rec := NewRecorder(newTestModel(t))
	if rec.Average() != 0 || rec.Max() != 0 || rec.Min() != 0 {
		t.Fatalf("empty recorder should report zeros")
	}
}
