// Package latency models the latency-critical primary service the testbed
// runs on every server (an Apache Lucene search instance in §6.1) and how its
// 99th-percentile response time reacts to co-located secondary work.
//
// The model is a per-server open queueing approximation: the service's tail
// latency grows with the total effective CPU pressure on the server. When
// secondary containers or harvested-storage accesses push the combined
// pressure toward saturation, the tail inflates sharply — which is exactly the
// behaviour Figures 10 and 12 show for YARN-Stock/HDFS-Stock. Primary-aware
// systems keep the combined pressure below capacity minus the reserve, so
// their tails track the no-harvesting baseline closely.
package latency

import (
	"fmt"
	"math/rand"
	"time"

	"harvest/internal/stats"
)

// ModelConfig tunes the tail-latency model. The defaults reproduce the
// testbed's no-harvesting range of roughly 369-406 ms average 99th-percentile
// latency (§6.3).
type ModelConfig struct {
	// BaseTail is the 99th-percentile latency of an unloaded server.
	BaseTail time.Duration
	// LoadFactor scales how quickly the tail grows with primary utilization
	// below saturation.
	LoadFactor float64
	// SaturationPoint is the combined utilization at which interference
	// starts to inflate the tail super-linearly.
	SaturationPoint float64
	// SaturationPenalty is the additional latency per unit of pressure beyond
	// the saturation point.
	SaturationPenalty time.Duration
	// Jitter is the relative standard deviation of measurement noise.
	Jitter float64
}

// DefaultModelConfig mirrors the testbed behaviour.
func DefaultModelConfig() ModelConfig {
	return ModelConfig{
		BaseTail:          360 * time.Millisecond,
		LoadFactor:        0.12,
		SaturationPoint:   0.75,
		SaturationPenalty: 2500 * time.Millisecond,
		Jitter:            0.02,
	}
}

// Model computes per-server 99th-percentile latencies and aggregates them the
// way Figure 10 reports them: the average across servers of each server's
// tail latency, sampled every minute.
type Model struct {
	cfg ModelConfig
	rng *rand.Rand
}

// NewModel creates a model with a deterministic noise source.
func NewModel(cfg ModelConfig, seed int64) (*Model, error) {
	if cfg.BaseTail <= 0 {
		return nil, fmt.Errorf("latency: BaseTail must be positive")
	}
	if cfg.SaturationPoint <= 0 || cfg.SaturationPoint > 1 {
		return nil, fmt.Errorf("latency: SaturationPoint %v out of (0,1]", cfg.SaturationPoint)
	}
	return &Model{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// ServerTail returns the 99th-percentile latency of the primary on a server
// given the primary's CPU utilization, the fraction of the server's cores held
// by secondary containers, and the extra pressure from harvested-storage I/O
// (0 when the file system is idle or denies accesses on busy servers).
func (m *Model) ServerTail(primaryUtil, secondaryCPUShare, storagePressure float64) time.Duration {
	primaryUtil = stats.Clamp(primaryUtil, 0, 1)
	if secondaryCPUShare < 0 {
		secondaryCPUShare = 0
	}
	if storagePressure < 0 {
		storagePressure = 0
	}
	// Baseline growth with the primary's own load.
	tail := float64(m.cfg.BaseTail) * (1 + m.cfg.LoadFactor*primaryUtil/(1.001-primaryUtil))
	// Interference: only pressure beyond the saturation point hurts the tail.
	combined := primaryUtil + secondaryCPUShare + storagePressure
	if combined > m.cfg.SaturationPoint {
		over := combined - m.cfg.SaturationPoint
		tail += over * float64(m.cfg.SaturationPenalty)
	}
	// Measurement noise.
	if m.cfg.Jitter > 0 {
		tail *= 1 + m.rng.NormFloat64()*m.cfg.Jitter
	}
	if tail < 0 {
		tail = 0
	}
	return time.Duration(tail)
}

// Recorder accumulates per-sample average tail latencies across servers, the
// series Figures 10 and 12 plot (one point per minute over five hours).
type Recorder struct {
	model *Model

	// perSample accumulates the current sample's sum and count.
	sampleSum   float64
	sampleCount int

	// Series holds one averaged point per completed sample.
	Series []time.Duration
}

// NewRecorder creates a recorder over a model.
func NewRecorder(model *Model) *Recorder {
	return &Recorder{model: model}
}

// Observe adds one server's state to the current sample.
func (r *Recorder) Observe(primaryUtil, secondaryCPUShare, storagePressure float64) {
	tail := r.model.ServerTail(primaryUtil, secondaryCPUShare, storagePressure)
	r.sampleSum += float64(tail)
	r.sampleCount++
}

// Flush closes the current sample, appending the across-server average to the
// series. Flushing an empty sample is a no-op.
func (r *Recorder) Flush() {
	if r.sampleCount == 0 {
		return
	}
	r.Series = append(r.Series, time.Duration(r.sampleSum/float64(r.sampleCount)))
	r.sampleSum = 0
	r.sampleCount = 0
}

// Average returns the mean of the recorded series.
func (r *Recorder) Average() time.Duration {
	if len(r.Series) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range r.Series {
		sum += v
	}
	return sum / time.Duration(len(r.Series))
}

// Max returns the largest recorded point.
func (r *Recorder) Max() time.Duration {
	var max time.Duration
	for _, v := range r.Series {
		if v > max {
			max = v
		}
	}
	return max
}

// Min returns the smallest recorded point (0 for an empty series).
func (r *Recorder) Min() time.Duration {
	if len(r.Series) == 0 {
		return 0
	}
	min := r.Series[0]
	for _, v := range r.Series[1:] {
		if v < min {
			min = v
		}
	}
	return min
}
