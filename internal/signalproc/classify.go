package signalproc

import (
	"fmt"
	"math"
	"time"

	"harvest/internal/stats"
)

// Pattern is the coarse utilization behaviour of a primary tenant (§3.2).
type Pattern int

const (
	// PatternConstant marks tenants whose utilization is roughly flat
	// (e.g. web crawlers, data scrubbers). Most tenants fall here.
	PatternConstant Pattern = iota
	// PatternPeriodic marks tenants with strong diurnal or weekly cycles
	// (typically user-facing services).
	PatternPeriodic
	// PatternUnpredictable marks tenants dominated by rare, aperiodic events
	// (development and testing environments).
	PatternUnpredictable

	// NumPatterns is the number of distinct patterns.
	NumPatterns = 3
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case PatternConstant:
		return "constant"
	case PatternPeriodic:
		return "periodic"
	case PatternUnpredictable:
		return "unpredictable"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// ClassifierConfig tunes the pattern classifier. The defaults reproduce the
// qualitative splits of the paper's characterization.
type ClassifierConfig struct {
	// ConstantCV is the coefficient-of-variation threshold below which a
	// trace is considered roughly constant.
	ConstantCV float64
	// PeriodicEnergyFraction is the minimum fraction of the non-DC spectral
	// energy that must be concentrated around the dominant bin and its first
	// harmonics for a trace to count as periodic. Periodic traces concentrate
	// energy in a few sharp peaks (Fig 1b); unpredictable traces spread it
	// over many low-frequency bins (Fig 1d).
	PeriodicEnergyFraction float64
	// MinPeriodicFrequency and MaxPeriodicFrequency bound the bin index (in
	// cycles per trace) considered a plausible periodic signal. For a
	// one-month trace, daily cycles land near bin 30 and weekly near bin 4;
	// bins 1-3 correspond to rare events, not service periodicity.
	MinPeriodicFrequency int
	MaxPeriodicFrequency int
}

// DefaultClassifierConfig returns the thresholds used throughout the repo.
// The frequency band is expressed in cycles per trace and tuned for the
// paper's one-month analysis window; use ForWindow when classifying a window
// of a different length.
func DefaultClassifierConfig() ClassifierConfig {
	return ClassifierConfig{
		ConstantCV:             0.12,
		PeriodicEnergyFraction: 0.35,
		MinPeriodicFrequency:   4,
		MaxPeriodicFrequency:   720,
	}
}

// ForWindow rescales the periodic frequency band from the reference window
// the thresholds were tuned for (the paper's one month) to an actual
// analysis window. Bin indexes are cycles per trace, so a daily cycle that
// lands at bin 30 in a one-month window lands at bin 7 in a one-week window;
// without this rescaling a short live-telemetry window would reject every
// periodic tenant. Amplitude thresholds (ConstantCV, PeriodicEnergyFraction)
// are window-invariant and pass through unchanged. Non-positive arguments or
// window == reference return the config unmodified.
func (c ClassifierConfig) ForWindow(window, reference time.Duration) ClassifierConfig {
	if window <= 0 || reference <= 0 || window == reference {
		return c
	}
	ratio := float64(window) / float64(reference)
	scaled := c
	if c.MinPeriodicFrequency > 0 {
		scaled.MinPeriodicFrequency = int(math.Round(float64(c.MinPeriodicFrequency) * ratio))
		if scaled.MinPeriodicFrequency < 1 {
			scaled.MinPeriodicFrequency = 1
		}
	}
	if c.MaxPeriodicFrequency > 0 {
		scaled.MaxPeriodicFrequency = int(math.Round(float64(c.MaxPeriodicFrequency) * ratio))
		if scaled.MaxPeriodicFrequency < scaled.MinPeriodicFrequency {
			scaled.MaxPeriodicFrequency = scaled.MinPeriodicFrequency
		}
	}
	return scaled
}

// Profile captures the frequency-domain features of a utilization trace.
// It is both the classification input and the feature vector handed to the
// K-Means clustering that forms utilization classes (§4.1).
type Profile struct {
	Pattern Pattern
	// Mean and Peak are the time-domain average and maximum utilization.
	Mean float64
	Peak float64
	// CV is the coefficient of variation of the trace.
	CV float64
	// DominantFrequency is the strongest eligible non-DC bin (cycles per
	// trace) within the configured periodic band.
	DominantFrequency int
	// DominantStrength is the ratio of the strongest bin to the mean bin.
	DominantStrength float64
	// PeriodicEnergy is the fraction of non-DC spectral energy concentrated
	// around the dominant bin and its first harmonics.
	PeriodicEnergy float64
	// SpectralCentroid summarizes where the spectral mass sits; low values
	// indicate energy concentrated in rare events (unpredictable traces).
	SpectralCentroid float64
}

// FeatureVector returns the numeric features used for K-Means clustering.
func (p Profile) FeatureVector() []float64 {
	return []float64{p.Mean, p.Peak, p.CV, p.SpectralCentroid}
}

// MinClassifySamples is the shortest trace Classify accepts — callers
// deciding whether a tenant's history window is usable (e.g. a ring
// refilling after eviction) should test against it rather than guessing.
const MinClassifySamples = 4

// Classify analyses a utilization trace (values in [0,1]) and returns its
// profile. It mirrors the paper's use of the FFT to separate periodic,
// constant, and unpredictable tenants.
func Classify(values []float64, cfg ClassifierConfig) (Profile, error) {
	if len(values) < MinClassifySamples {
		return Profile{}, fmt.Errorf("signalproc: trace too short to classify (%d samples)", len(values))
	}
	mean := stats.Mean(values)
	peak := stats.Max(values)
	cv := stats.CoefficientOfVariation(values)

	spectrum, err := PowerSpectrum(values)
	if err != nil {
		return Profile{}, err
	}
	meanMag := stats.Mean(spectrum)
	centroid := spectralCentroid(spectrum)

	// Find the strongest bin inside the plausible periodic band.
	minBin := cfg.MinPeriodicFrequency
	if minBin < 1 {
		minBin = 1
	}
	maxBin := cfg.MaxPeriodicFrequency
	if maxBin <= 0 || maxBin > len(spectrum) {
		maxBin = len(spectrum)
	}
	domFreq := 0
	domMag := 0.0
	for bin := minBin; bin <= maxBin; bin++ {
		if m := spectrum[bin-1]; m > domMag {
			domMag = m
			domFreq = bin
		}
	}
	domStrength := 0.0
	if meanMag > 0 {
		domStrength = domMag / meanMag
	}
	periodicEnergy := harmonicEnergyFraction(spectrum, domFreq)

	profile := Profile{
		Mean:              mean,
		Peak:              peak,
		CV:                cv,
		DominantFrequency: domFreq,
		DominantStrength:  domStrength,
		PeriodicEnergy:    periodicEnergy,
		SpectralCentroid:  centroid,
	}

	switch {
	case cv <= cfg.ConstantCV:
		profile.Pattern = PatternConstant
	case domFreq >= cfg.MinPeriodicFrequency && domFreq <= maxBin &&
		periodicEnergy >= cfg.PeriodicEnergyFraction:
		profile.Pattern = PatternPeriodic
	default:
		profile.Pattern = PatternUnpredictable
	}
	return profile, nil
}

// harmonicEnergyFraction returns the share of the total non-DC spectral energy
// held by the dominant bin, its immediate neighbours, and its first three
// harmonics (also with one-bin slack). A value near 1 means the series is a
// clean periodic signal; values well below 0.3 indicate broadband energy from
// aperiodic events.
func harmonicEnergyFraction(spectrum []float64, domFreq int) float64 {
	if domFreq <= 0 {
		return 0
	}
	total := 0.0
	for _, m := range spectrum {
		total += m * m
	}
	if total == 0 {
		return 0
	}
	captured := 0.0
	for harmonic := 1; harmonic <= 4; harmonic++ {
		center := domFreq * harmonic
		for bin := center - 1; bin <= center+1; bin++ {
			if bin >= 1 && bin <= len(spectrum) {
				captured += spectrum[bin-1] * spectrum[bin-1]
			}
		}
	}
	if captured > total {
		captured = total
	}
	return captured / total
}

// spectralCentroid returns the magnitude-weighted mean bin index normalized
// by the number of bins, i.e. a value in (0, 1]. Energy concentrated in low
// frequencies (rare events) yields a small centroid.
func spectralCentroid(spectrum []float64) float64 {
	total := 0.0
	weighted := 0.0
	for i, m := range spectrum {
		total += m
		weighted += float64(i+1) * m
	}
	if total == 0 {
		return 0
	}
	return weighted / total / float64(len(spectrum))
}
