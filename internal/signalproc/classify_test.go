package signalproc

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func periodicTrace(n, cycles int, base, amplitude float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = base + amplitude*math.Sin(2*math.Pi*float64(cycles)*float64(i)/float64(n))
	}
	return out
}

func constantTrace(n int, level, jitter float64, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = level + jitter*(rng.Float64()-0.5)
	}
	return out
}

func unpredictableTrace(n int, rng *rand.Rand) []float64 {
	// Rare large spikes over a low baseline: most spectral energy at low
	// frequencies, no dominant periodic component.
	out := make([]float64, n)
	level := 0.1
	for i := range out {
		if rng.Float64() < 0.005 {
			level = 0.2 + 0.7*rng.Float64()
		}
		// Exponential decay back to the baseline.
		level = 0.1 + (level-0.1)*0.98
		out[i] = level
	}
	return out
}

func TestClassifyPeriodic(t *testing.T) {
	trace := periodicTrace(21600, 30, 0.4, 0.25)
	p, err := Classify(trace, DefaultClassifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Pattern != PatternPeriodic {
		t.Fatalf("pattern = %v, want periodic (profile %+v)", p.Pattern, p)
	}
	if p.DominantFrequency != 30 {
		t.Errorf("dominant frequency = %d, want 30", p.DominantFrequency)
	}
}

func TestClassifyConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trace := constantTrace(21600, 0.55, 0.04, rng)
	p, err := Classify(trace, DefaultClassifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Pattern != PatternConstant {
		t.Fatalf("pattern = %v, want constant (CV %v)", p.Pattern, p.CV)
	}
	if math.Abs(p.Mean-0.55) > 0.02 {
		t.Errorf("mean = %v, want ~0.55", p.Mean)
	}
}

func TestClassifyUnpredictable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trace := unpredictableTrace(21600, rng)
	p, err := Classify(trace, DefaultClassifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Pattern != PatternUnpredictable {
		t.Fatalf("pattern = %v, want unpredictable (profile %+v)", p.Pattern, p)
	}
}

func TestClassifyTooShort(t *testing.T) {
	if _, err := Classify([]float64{0.1, 0.2}, DefaultClassifierConfig()); err == nil {
		t.Fatalf("expected error for too-short trace")
	}
}

func TestClassifyZeroTrace(t *testing.T) {
	p, err := Classify(make([]float64, 1000), DefaultClassifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Pattern != PatternConstant {
		t.Fatalf("all-zero trace should classify as constant, got %v", p.Pattern)
	}
}

func TestProfileFeatureVector(t *testing.T) {
	p := Profile{Mean: 0.3, Peak: 0.8, CV: 0.2, SpectralCentroid: 0.1}
	fv := p.FeatureVector()
	if len(fv) != 4 {
		t.Fatalf("feature vector length = %d", len(fv))
	}
	if fv[0] != 0.3 || fv[1] != 0.8 || fv[2] != 0.2 || fv[3] != 0.1 {
		t.Fatalf("feature vector = %v", fv)
	}
}

func TestPatternString(t *testing.T) {
	if PatternConstant.String() != "constant" ||
		PatternPeriodic.String() != "periodic" ||
		PatternUnpredictable.String() != "unpredictable" {
		t.Errorf("unexpected pattern strings")
	}
	if Pattern(9).String() == "" {
		t.Errorf("unknown pattern should produce non-empty string")
	}
}

func TestSpectralCentroidZeroSpectrum(t *testing.T) {
	if got := spectralCentroid([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("centroid of zero spectrum = %v, want 0", got)
	}
}

func TestClassifyDailyCycleOverAMonth(t *testing.T) {
	// A month-long trace with a daily cycle should peak at bin ~30 (Fig 1b
	// shows bin 31 for a 31-day month; our synthetic month has 30 days).
	trace := periodicTrace(21600, 30, 0.5, 0.3)
	p, err := Classify(trace, DefaultClassifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Pattern != PatternPeriodic || p.DominantFrequency != 30 {
		t.Fatalf("profile = %+v", p)
	}
}

func TestForWindowRescalesPeriodicBand(t *testing.T) {
	month := 30 * 24 * time.Hour
	week := 7 * 24 * time.Hour
	cfg := DefaultClassifierConfig()

	scaled := cfg.ForWindow(week, month)
	if scaled.MinPeriodicFrequency != 1 {
		t.Errorf("week MinPeriodicFrequency = %d, want 1 (4*7/30 rounded, floored at 1)", scaled.MinPeriodicFrequency)
	}
	if scaled.MaxPeriodicFrequency != 168 {
		t.Errorf("week MaxPeriodicFrequency = %d, want 168 (720*7/30)", scaled.MaxPeriodicFrequency)
	}
	// Amplitude thresholds pass through untouched.
	if scaled.ConstantCV != cfg.ConstantCV || scaled.PeriodicEnergyFraction != cfg.PeriodicEnergyFraction {
		t.Error("amplitude thresholds must be window-invariant")
	}
	// Identity and degenerate cases.
	if got := cfg.ForWindow(month, month); got != cfg {
		t.Error("window == reference must be a no-op")
	}
	if got := cfg.ForWindow(0, month); got != cfg {
		t.Error("non-positive window must be a no-op")
	}
	if got := cfg.ForWindow(week, 0); got != cfg {
		t.Error("non-positive reference must be a no-op")
	}

	// A daily cycle classified over one week: 7 cycles per trace, inside the
	// rescaled band but outside the month-tuned one.
	trace := periodicTrace(7*720, 7, 0.5, 0.3)
	p, err := Classify(trace, scaled)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pattern != PatternPeriodic {
		t.Errorf("daily cycle over one week classified as %v with rescaled band, want periodic", p.Pattern)
	}
}
