// Package signalproc implements the signal-processing pipeline the paper uses
// to understand primary tenant utilization: a Fast Fourier Transform, power
// spectra, and the classification of one-month utilization traces into
// periodic, constant, and unpredictable patterns (§3.2).
package signalproc

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrEmptyInput is returned when a transform is requested on an empty series.
var ErrEmptyInput = errors.New("signalproc: empty input")

// FFT computes the discrete Fourier transform of x. Power-of-two lengths use
// an iterative radix-2 Cooley-Tukey algorithm; other lengths use Bluestein's
// chirp-z transform so arbitrary trace lengths (e.g. 21600 two-minute slots in
// a month) are supported without padding artefacts.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmptyInput
	}
	if n == 1 {
		return []complex128{x[0]}, nil
	}
	if isPowerOfTwo(n) {
		out := make([]complex128, n)
		copy(out, x)
		radix2(out, false)
		return out, nil
	}
	return bluestein(x, false)
}

// IFFT computes the inverse discrete Fourier transform of x, normalized by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmptyInput
	}
	var out []complex128
	var err error
	if n == 1 {
		out = []complex128{x[0]}
	} else if isPowerOfTwo(n) {
		out = make([]complex128, n)
		copy(out, x)
		radix2(out, true)
	} else {
		out, err = bluestein(x, true)
		if err != nil {
			return nil, err
		}
	}
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out, nil
}

// FFTReal transforms a real-valued series and returns the complex spectrum.
func FFTReal(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmptyInput
	}
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

func isPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// nextPowerOfTwo returns the smallest power of two >= n.
func nextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// radix2 performs an in-place iterative Cooley-Tukey FFT on a power-of-two
// length slice. When inverse is true the conjugate twiddles are used (the
// caller applies the 1/N normalization).
func radix2(a []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		angle := 2 * math.Pi / float64(length)
		if !inverse {
			angle = -angle
		}
		wl := cmplx.Exp(complex(0, angle))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes the DFT of an arbitrary-length sequence by re-expressing
// it as a convolution, which is evaluated with power-of-two FFTs.
func bluestein(x []complex128, inverse bool) ([]complex128, error) {
	n := len(x)
	m := nextPowerOfTwo(2*n + 1)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp sequence w[k] = exp(sign * i*pi*k^2/n).
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k^2 mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := sign * math.Pi * float64(kk) / float64(n)
		w[k] = cmplx.Exp(complex(0, angle))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
	}
	b[0] = cmplx.Conj(w[0])
	for k := 1; k < n; k++ {
		b[k] = cmplx.Conj(w[k])
		b[m-k] = cmplx.Conj(w[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * w[k]
	}
	return out, nil
}

// PowerSpectrum returns the magnitude of each frequency bin of the real
// series x, excluding the DC component (bin 0) and covering bins 1..N/2.
// Bin k corresponds to a signal that repeats k times over the series length —
// for a one-month trace, bin 31 is the daily cycle the paper highlights in
// Figure 1b.
func PowerSpectrum(x []float64) ([]float64, error) {
	spectrum, err := FFTReal(x)
	if err != nil {
		return nil, err
	}
	half := len(x) / 2
	if half < 1 {
		return nil, fmt.Errorf("signalproc: series of length %d has no non-DC bins", len(x))
	}
	out := make([]float64, half)
	for k := 1; k <= half; k++ {
		out[k-1] = cmplx.Abs(spectrum[k])
	}
	return out, nil
}
