package signalproc

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// dftNaive is an O(n^2) reference DFT used to validate the FFT.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func complexAlmostEqual(a, b []complex128, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

func randomComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func TestFFTEmpty(t *testing.T) {
	if _, err := FFT(nil); err == nil {
		t.Fatalf("expected error for empty input")
	}
	if _, err := IFFT(nil); err == nil {
		t.Fatalf("expected error for empty input")
	}
	if _, err := FFTReal(nil); err == nil {
		t.Fatalf("expected error for empty input")
	}
}

func TestFFTSingle(t *testing.T) {
	out, err := FFT([]complex128{3 + 4i})
	if err != nil || out[0] != 3+4i {
		t.Fatalf("FFT of single sample = %v, %v", out, err)
	}
	inv, err := IFFT([]complex128{3 + 4i})
	if err != nil || inv[0] != 3+4i {
		t.Fatalf("IFFT of single sample = %v, %v", inv, err)
	}
}

func TestFFTMatchesNaivePowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := randomComplex(rng, n)
		got, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		want := dftNaive(x)
		if !complexAlmostEqual(got, want, 1e-6*float64(n)) {
			t.Fatalf("FFT mismatch for n=%d", n)
		}
	}
}

func TestFFTMatchesNaiveArbitraryLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 6, 7, 12, 31, 60, 100} {
		x := randomComplex(rng, n)
		got, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		want := dftNaive(x)
		if !complexAlmostEqual(got, want, 1e-6*float64(n)) {
			t.Fatalf("Bluestein FFT mismatch for n=%d", n)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{8, 10, 21, 64, 100, 255} {
		x := randomComplex(rng, n)
		spec, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := IFFT(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !complexAlmostEqual(back, x, 1e-7*float64(n)) {
			t.Fatalf("round trip mismatch for n=%d", n)
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 200 {
			return true
		}
		x := make([]complex128, len(raw))
		for i, r := range raw {
			x[i] = complex(float64(r)/255, rng.Float64())
		}
		spec, err := FFT(x)
		if err != nil {
			return false
		}
		back, err := IFFT(spec)
		if err != nil {
			return false
		}
		return complexAlmostEqual(back, x, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 48
	a := randomComplex(rng, n)
	b := randomComplex(rng, n)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	fa, _ := FFT(a)
	fb, _ := FFT(b)
	fsum, _ := FFT(sum)
	expect := make([]complex128, n)
	for i := range expect {
		expect[i] = fa[i] + fb[i]
	}
	if !complexAlmostEqual(fsum, expect, 1e-6) {
		t.Fatalf("FFT is not linear")
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 128
	x := randomComplex(rng, n)
	spec, _ := FFT(x)
	timeEnergy := 0.0
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy := 0.0
	for _, v := range spec {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestPowerSpectrumDetectsSine(t *testing.T) {
	n := 720 // one day at 2-minute slots
	cycles := 31
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5 + 0.3*math.Sin(2*math.Pi*float64(cycles)*float64(i)/float64(n))
	}
	spectrum, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range spectrum {
		if spectrum[i] > spectrum[best] {
			best = i
		}
	}
	if best+1 != cycles {
		t.Fatalf("dominant bin = %d, want %d", best+1, cycles)
	}
}

func TestPowerSpectrumErrors(t *testing.T) {
	if _, err := PowerSpectrum(nil); err == nil {
		t.Errorf("empty input should error")
	}
	if _, err := PowerSpectrum([]float64{1}); err == nil {
		t.Errorf("single sample has no non-DC bins and should error")
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 17: 32, 1000: 1024}
	for in, want := range cases {
		if got := nextPowerOfTwo(in); got != want {
			t.Errorf("nextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !isPowerOfTwo(n) {
			t.Errorf("%d should be a power of two", n)
		}
	}
	for _, n := range []int{0, 3, 6, 100, -4} {
		if isPowerOfTwo(n) {
			t.Errorf("%d should not be a power of two", n)
		}
	}
}
