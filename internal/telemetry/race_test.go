package telemetry_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvest/internal/telemetry"
	"harvest/internal/tenant"
	"harvest/internal/timeseries"
)

// TestEvictStaleRaceWithIngestAndReaders hammers the ring-replacement path:
// one writer ingests continuously (regrowing evicted rings), one evictor
// calls EvictStale in a tight loop with a near-zero staleness window, and
// lock-free readers snapshot/read throughout — under -race (CI runs the
// whole suite with it) this pins the swap's memory safety, and the value↔
// timestamp coupling below pins torn-read freedom and cursor monotonicity:
//
//   - every sample's value must equal valueFor(its own timestamp) — a reader
//     pairing a new value with an old timestamp (or vice versa) fails this;
//   - timestamps within one snapshot must be strictly increasing (the
//     published cursor never runs backwards, through any number of evictions
//     and regrows);
//   - Last / LastValue / SeriesFor must never observe a value outside what
//     the writer produced.
func TestEvictStaleRaceWithIngestAndReaders(t *testing.T) {
	const (
		tenants    = 4
		capacity   = 48
		appendsPer = 4000
		readers    = 3
	)
	interval := timeseries.SlotDuration
	ids := make([]tenant.ID, tenants)
	for i := range ids {
		ids[i] = tenant.ID(i)
	}
	st := telemetry.NewStore(ids, interval, capacity)

	// valueFor derives a sample's value from its slot index, so any
	// value/timestamp mismatch a reader observes is a torn read.
	valueFor := func(slot int64) float64 { return float64(slot%997) / 997 }
	atOf := func(slot int64) time.Duration { return time.Duration(slot) * interval }

	var stop atomic.Bool
	var wg, writers sync.WaitGroup

	// Writer: one goroutine per tenant, globally increasing slot offsets.
	for _, id := range ids {
		writers.Add(1)
		go func(id tenant.ID) {
			defer writers.Done()
			for slot := int64(1); slot <= appendsPer; slot++ {
				if _, err := st.Ingest(id, atOf(slot), valueFor(slot)); err != nil {
					t.Errorf("Ingest(%v, slot %d): %v", id, slot, err)
					return
				}
			}
		}(id)
	}

	// Evictor: constant churn — with a 1ns staleness window nearly every
	// pass evicts whatever rings hold data, and the next ingest regrows them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			st.EvictStale(time.Nanosecond, time.Now().Add(time.Second))
		}
	}()

	// Readers: lock-free snapshots and point reads, validated continuously.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var buf []telemetry.Sample
			for !stop.Load() {
				id := ids[r%tenants]
				ring := st.Ring(id)
				if ring == nil {
					t.Errorf("Ring(%v) = nil for a known tenant", id)
					return
				}
				buf = ring.Snapshot(buf[:0])
				prev := time.Duration(-1)
				for _, s := range buf {
					if s.At <= prev {
						t.Errorf("snapshot timestamps not strictly increasing: %v after %v", s.At, prev)
						return
					}
					prev = s.At
					slot := int64(s.At / interval)
					if want := valueFor(slot); s.Value != want {
						t.Errorf("torn read: slot %d has value %v, want %v", slot, s.Value, want)
						return
					}
				}
				if last, ok := ring.Last(); ok {
					slot := int64(last.At / interval)
					if want := valueFor(slot); last.Value != want {
						t.Errorf("torn Last: slot %d has value %v, want %v", slot, last.Value, want)
						return
					}
				}
				if v := st.LastValue(id, -1); v != -1 {
					if v < 0 || v >= 1 {
						t.Errorf("LastValue = %v, outside the writer's range", v)
						return
					}
				}
				if s := st.SeriesFor(id); s != nil {
					for _, v := range s.Values {
						if v < 0 || v >= 1 {
							t.Errorf("SeriesFor value %v outside the writer's range", v)
							return
						}
					}
				}
			}
		}(r)
	}

	// Stop the churn once every writer has finished its appends, then let the
	// evictor and readers drain.
	writers.Wait()
	stop.Store(true)
	wg.Wait()

	// The store-wide clocks survived the churn monotonically.
	if got := st.Horizon(); got != atOf(appendsPer) {
		t.Errorf("Horizon = %v, want %v", got, atOf(appendsPer))
	}
	if _, ok := st.LastIngestAt(); !ok {
		t.Error("LastIngestAt unset after live ingest")
	}
	// Deterministic eviction coverage even if the churn loop lost every
	// scheduling race: regrow each ring with one fresh sample, then a single
	// explicit pass must reclaim all of them.
	for _, id := range ids {
		if _, err := st.Ingest(id, atOf(appendsPer+1), valueFor(appendsPer+1)); err != nil {
			t.Fatalf("final Ingest(%v): %v", id, err)
		}
	}
	if n := st.EvictStale(time.Nanosecond, time.Now().Add(time.Second)); n != tenants {
		t.Errorf("final EvictStale evicted %d rings, want %d", n, tenants)
	}
	if st.Evictions() < tenants {
		t.Errorf("Evictions = %d, want at least %d", st.Evictions(), tenants)
	}
}
