// Package telemetry is the live utilization history source of the serving
// layer: fixed-capacity per-tenant ring buffers of timestamped utilization
// samples. In the paper's deployment the clustering service re-derives
// utilization classes "periodically, from the latest telemetry" (§4.1); this
// package is where that telemetry accumulates between re-clusterings.
//
// Concurrency model: each ring has a single logical writer (concurrent
// ingest calls serialize on a tiny per-ring mutex) and any number of
// lock-free readers. The writer fills a slot with atomic stores and then
// publishes it by advancing an atomic cursor; readers load the cursor, copy
// the slots they want, and re-check the cursor to detect a wrap-around
// overwrite, retrying in that (rare) case. Snapshot builds therefore never
// block ingest and ingest never blocks snapshot builds — the property the
// serving layer's "queries never wait on a rebuild" contract extends to the
// new data path.
package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/tenant"
	"harvest/internal/timeseries"
)

// Sample is one timestamped utilization observation for a tenant's "average
// server". At is an offset on the telemetry clock (time since the start of
// the tenant's history), not wall-clock time.
type Sample struct {
	At    time.Duration
	Value float64
}

// slot is one ring cell. Value bits and timestamp are separate atomics; the
// cursor re-check in snapshot() is what keeps a reader from pairing a new
// value with an old timestamp.
type slot struct {
	at   atomic.Int64
	bits atomic.Uint64
}

// Ring is a fixed-capacity single-writer ring of samples. It stores one
// spare slot beyond the requested capacity so that a reader copying the full
// window can always detect (rather than miss) a concurrent overwrite.
type Ring struct {
	slots []slot
	head  atomic.Uint64 // samples ever appended; sample n lives in slots[n % len(slots)]
	wmu   sync.Mutex    // serializes writers only; readers never take it
}

// NewRing creates a ring holding up to capacity samples.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]slot, capacity+1)}
}

// Capacity returns the maximum number of samples the ring retains.
func (r *Ring) Capacity() int { return len(r.slots) - 1 }

// Len returns how many samples are currently retained.
func (r *Ring) Len() int {
	head := r.head.Load()
	if c := uint64(r.Capacity()); head > c {
		return int(c)
	}
	return int(head)
}

// Append adds one sample. Safe for concurrent callers (they serialize on the
// ring's writer mutex); never blocks or is blocked by readers.
func (r *Ring) Append(at time.Duration, value float64) {
	r.wmu.Lock()
	r.appendLocked(at, value)
	r.wmu.Unlock()
}

func (r *Ring) appendLocked(at time.Duration, value float64) {
	head := r.head.Load()
	s := &r.slots[head%uint64(len(r.slots))]
	s.at.Store(int64(at))
	s.bits.Store(math.Float64bits(value))
	r.head.Store(head + 1) // publish
}

// appendAfter resolves the sample's offset against the ring's latest sample
// and appends, all under the writer mutex so two concurrent ingests cannot
// both pass the monotonicity check. A non-positive at becomes one interval
// after the latest sample; an explicit at must be strictly newer than it.
func (r *Ring) appendAfter(at time.Duration, value float64, interval time.Duration) (time.Duration, error) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	head := r.head.Load()
	var lastAt time.Duration
	if head > 0 {
		// Safe to read directly: we hold the only writer lock.
		lastAt = time.Duration(r.slots[(head-1)%uint64(len(r.slots))].at.Load())
	}
	if at <= 0 {
		at = lastAt + interval
	} else if head > 0 && at <= lastAt {
		return 0, fmt.Errorf("telemetry: sample at %v not newer than latest %v", at, lastAt)
	}
	r.appendLocked(at, value)
	return at, nil
}

// Last returns the most recent sample, if any. Lock-free.
func (r *Ring) Last() (Sample, bool) {
	for {
		head := r.head.Load()
		if head == 0 {
			return Sample{}, false
		}
		s := &r.slots[(head-1)%uint64(len(r.slots))]
		out := Sample{At: time.Duration(s.at.Load()), Value: math.Float64frombits(s.bits.Load())}
		// Sample head-1's slot is next reused by sample head-1+len(slots),
		// which the writer begins once the published cursor reaches it; the
		// copy above is consistent iff the cursor is still strictly below
		// that (same acceptance rule as Snapshot with start = head-1).
		if r.head.Load() < head+uint64(r.Capacity()) {
			return out, true
		}
	}
}

// Snapshot appends the retained samples, oldest first, to dst and returns
// it. Lock-free: on the (rare) wrap-around race with the writer it retries
// with the newer cursor.
func (r *Ring) Snapshot(dst []Sample) []Sample {
	base := len(dst)
	for {
		dst = dst[:base]
		head := r.head.Load()
		n := head
		if c := uint64(r.Capacity()); n > c {
			n = c
		}
		start := head - n
		for i := start; i < head; i++ {
			s := &r.slots[i%uint64(len(r.slots))]
			dst = append(dst, Sample{At: time.Duration(s.at.Load()), Value: math.Float64frombits(s.bits.Load())})
		}
		// Accept iff no sample we copied can have been overwritten: sample
		// `start`'s slot is first reused when the writer begins sample
		// start+len(slots), which it only does once head == start+len(slots)-1
		// has been published... conservatively, once head exceeds
		// start+Capacity the oldest copied slot may be mid-rewrite.
		if r.head.Load() <= start+uint64(r.Capacity()) {
			return dst
		}
	}
}

// tenantRing is one tenant's slot in the store: the current ring behind an
// atomic pointer (readers load it lock-free) plus the mutation lock writers
// and the eviction sweep serialize on. Eviction swaps in a tiny placeholder
// ring so a tenant that stopped reporting stops pinning a full window of
// memory; the next ingest for the tenant swaps a full-capacity ring back in.
type tenantRing struct {
	mu         sync.Mutex // serializes writes and ring replacement
	p          atomic.Pointer[Ring]
	lastAppend atomic.Int64  // wall-clock unix nanos of the last append (bootstrap included)
	mark       atomic.Uint64 // bumped on every window change: append, bootstrap, eviction
}

// Store holds one ring per tenant of a datacenter plus the store-wide
// telemetry clock. The tenant set is fixed at construction, so the map is
// read-only and needs no lock. Store implements tenant.HistorySource: it is
// the ring-backed twin of tenant.TraceHistory.
type Store struct {
	interval time.Duration
	capacity int
	rings    map[tenant.ID]*tenantRing

	horizon    atomic.Int64  // max sample offset ever ingested (telemetry clock)
	total      atomic.Uint64 // samples ever ingested (incl. bootstrap)
	lastIngest atomic.Int64  // wall-clock unix nanos of the last live ingest; 0 = never
	evictions  atomic.Uint64 // rings reclaimed by EvictStale since construction
}

// NewStore creates a store with one ring of the given capacity per tenant.
// interval is the nominal sample spacing (the slot width classification
// assumes when it materializes a ring as a series).
func NewStore(ids []tenant.ID, interval time.Duration, capacity int) *Store {
	if interval <= 0 {
		interval = timeseries.SlotDuration
	}
	if capacity < 1 {
		capacity = 1
	}
	st := &Store{interval: interval, capacity: capacity, rings: make(map[tenant.ID]*tenantRing, len(ids))}
	for _, id := range ids {
		tr := &tenantRing{}
		tr.p.Store(NewRing(capacity))
		st.rings[id] = tr
	}
	return st
}

// Interval returns the nominal sample spacing.
func (st *Store) Interval() time.Duration { return st.interval }

// Ring returns the tenant's current ring, or nil for an unknown tenant. The
// returned ring is safe to read concurrently but may be superseded at any
// time by eviction or regrowth; writers must go through the store.
func (st *Store) Ring(id tenant.ID) *Ring {
	tr := st.rings[id]
	if tr == nil {
		return nil
	}
	return tr.p.Load()
}

// NumTenants returns how many tenants the store tracks.
func (st *Store) NumTenants() int { return len(st.rings) }

// TotalSamples returns how many samples were ever ingested (bootstrap
// included). The serving layer uses it as a cheap "has anything changed"
// version for its live usage cache.
func (st *Store) TotalSamples() uint64 { return st.total.Load() }

// LastIngestAt returns the wall-clock time of the last live Ingest call and
// whether one ever happened. Bootstrap fills do not count: the metric exists
// to expose staleness of the live path.
func (st *Store) LastIngestAt() (time.Time, bool) {
	ns := st.lastIngest.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// Bootstrap seeds a tenant's ring from a historical series so the daemon has
// a full analysis window before the first live sample arrives. The trailing
// ring-capacity slots of the series are written with timestamps ending at
// endAt (i.e. the last series value is "now" on the telemetry clock).
func (st *Store) Bootstrap(id tenant.ID, s *timeseries.Series, endAt time.Duration) error {
	tr := st.rings[id]
	if tr == nil {
		return fmt.Errorf("telemetry: unknown tenant %v", id)
	}
	if s == nil || s.Len() == 0 {
		return fmt.Errorf("telemetry: tenant %v: empty bootstrap series", id)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	r := st.fullRingLocked(tr)
	tail := s.Tail(r.Capacity())
	n := tail.Len()
	for i := 0; i < n; i++ {
		at := endAt - time.Duration(n-1-i)*st.interval
		r.Append(at, tail.Values[i])
	}
	tr.lastAppend.Store(time.Now().UnixNano())
	tr.mark.Add(1)
	st.total.Add(uint64(n))
	st.advanceHorizon(endAt)
	return nil
}

// fullRingLocked returns the tenant's ring at full store capacity, regrowing
// it (and carrying over whatever samples the placeholder held) when a prior
// eviction shrank it. Caller holds tr.mu.
func (st *Store) fullRingLocked(tr *tenantRing) *Ring {
	r := tr.p.Load()
	if r.Capacity() >= st.capacity {
		return r
	}
	grown := NewRing(st.capacity)
	for _, s := range r.Snapshot(nil) {
		grown.Append(s.At, s.Value)
	}
	tr.p.Store(grown)
	return grown
}

// Ingest appends one live sample for a tenant. A non-positive at means "one
// interval after the tenant's latest sample", which lets naive emitters post
// values without tracking the telemetry clock; an explicit at must be newer
// than the tenant's latest sample — rings are strictly time-ordered, and a
// backdated (retried/duplicated) sample must not become the "most recent"
// value the live usage view serves. The value is clamped to [0, 1]
// (utilization fraction). Returns the offset the sample was recorded at.
func (st *Store) Ingest(id tenant.ID, at time.Duration, value float64) (time.Duration, error) {
	tr := st.rings[id]
	if tr == nil {
		return 0, fmt.Errorf("telemetry: unknown tenant %v", id)
	}
	if math.IsNaN(value) {
		return 0, fmt.Errorf("telemetry: tenant %v: NaN utilization", id)
	}
	if value < 0 {
		value = 0
	} else if value > 1 {
		value = 1
	}
	tr.mu.Lock()
	r := st.fullRingLocked(tr) // a tenant that resumes reporting regrows its evicted ring
	at, err := r.appendAfter(at, value, st.interval)
	if err == nil {
		tr.lastAppend.Store(time.Now().UnixNano())
		tr.mark.Add(1)
	}
	tr.mu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("telemetry: tenant %v: %w", id, err)
	}
	st.total.Add(1)
	st.advanceHorizon(at)
	st.lastIngest.Store(time.Now().UnixNano())
	return at, nil
}

// EvictStale reclaims the ring of every tenant whose last append is older
// than staleAfter: the full-window ring is replaced by a one-slot placeholder
// (readers racing the swap finish against the old ring), so a tenant that
// stopped reporting neither pins a month of samples in memory nor feeds a
// stale window into re-clustering — SeriesFor returns nil until the tenant
// reports again, which drops it from every class. Returns how many rings
// were evicted.
func (st *Store) EvictStale(staleAfter time.Duration, now time.Time) int {
	if staleAfter <= 0 {
		return 0
	}
	cutoff := now.Add(-staleAfter).UnixNano()
	evicted := 0
	for _, tr := range st.rings {
		if tr.p.Load().Len() == 0 || tr.lastAppend.Load() > cutoff {
			continue
		}
		tr.mu.Lock()
		if tr.p.Load().Len() > 0 && tr.lastAppend.Load() <= cutoff {
			tr.p.Store(NewRing(1))
			tr.mark.Add(1)
			evicted++
		}
		tr.mu.Unlock()
	}
	if evicted > 0 {
		st.evictions.Add(uint64(evicted))
	}
	return evicted
}

// Evictions returns how many rings EvictStale has reclaimed since
// construction.
func (st *Store) Evictions() uint64 { return st.evictions.Load() }

func (st *Store) advanceHorizon(at time.Duration) {
	for {
		cur := st.horizon.Load()
		if int64(at) <= cur || st.horizon.CompareAndSwap(cur, int64(at)) {
			return
		}
	}
}

// Horizon implements tenant.HistorySource: the telemetry offset of the
// freshest sample in the store, the natural AsOf for a snapshot built from
// it.
func (st *Store) Horizon() time.Duration { return time.Duration(st.horizon.Load()) }

// AdvanceClock moves the telemetry clock forward to at without adding a
// sample (it never moves backwards). The restore path uses it when a
// persisted snapshot was built from live samples newer than the bootstrap
// window, so the published AsOf stays monotonic across a daemon restart.
func (st *Store) AdvanceClock(at time.Duration) { st.advanceHorizon(at) }

// HistoryStats implements tenant.HistoryStats: the retained sample count and
// the per-tenant change mark the incremental re-clustering uses to skip
// tenants whose window has not moved. The mark is read before any window
// copy a caller makes, so a racing ingest at worst invalidates the mark a
// round early — never late.
func (st *Store) HistoryStats(id tenant.ID) (samples int, mark uint64, ok bool) {
	tr := st.rings[id]
	if tr == nil {
		return 0, 0, false
	}
	return tr.p.Load().Len(), tr.mark.Load(), true
}

// SeriesFor implements tenant.HistorySource: it materializes the tenant's
// ring as a fixed-interval series (samples are treated as uniformly spaced
// at the store interval — the FFT input contract). Returns nil for unknown
// tenants or empty rings. The returned series is a private copy.
func (st *Store) SeriesFor(id tenant.ID) *timeseries.Series {
	r := st.Ring(id)
	if r == nil {
		return nil
	}
	samples := r.Snapshot(make([]Sample, 0, r.Len()))
	if len(samples) == 0 {
		return nil
	}
	values := make([]float64, len(samples))
	for i, s := range samples {
		values[i] = s.Value
	}
	return timeseries.New(st.interval, values)
}

// UtilizationAt implements tenant.HistorySource: the value of the tenant's
// latest sample at or before the given offset (a step-function read of the
// history). Offsets before the retained window return the oldest retained
// sample; unknown or empty tenants return 0.
func (st *Store) UtilizationAt(id tenant.ID, at time.Duration) float64 {
	r := st.Ring(id)
	if r == nil {
		return 0
	}
	if last, ok := r.Last(); ok && last.At <= at {
		return last.Value // common case: reading at or past the horizon
	}
	samples := r.Snapshot(make([]Sample, 0, r.Len()))
	for i := len(samples) - 1; i >= 0; i-- {
		if samples[i].At <= at {
			return samples[i].Value
		}
	}
	if len(samples) > 0 {
		return samples[0].Value
	}
	return 0
}

// LastValue returns the tenant's most recent sample value, or fallback when
// the ring is empty or the tenant unknown. This is the O(1) read the serving
// layer's live usage view is built from.
func (st *Store) LastValue(id tenant.ID, fallback float64) float64 {
	r := st.Ring(id)
	if r == nil {
		return fallback
	}
	if last, ok := r.Last(); ok {
		return last.Value
	}
	return fallback
}
