package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"

	"harvest/internal/tenant"
	"harvest/internal/timeseries"
)

func TestRingAppendAndSnapshot(t *testing.T) {
	r := NewRing(4)
	if r.Len() != 0 {
		t.Fatalf("empty ring Len = %d", r.Len())
	}
	if _, ok := r.Last(); ok {
		t.Fatal("empty ring has a Last sample")
	}
	for i := 1; i <= 3; i++ {
		r.Append(time.Duration(i)*time.Minute, float64(i)/10)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	last, ok := r.Last()
	if !ok || last.At != 3*time.Minute || last.Value != 0.3 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
	got := r.Snapshot(nil)
	if len(got) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(got))
	}
	for i, s := range got {
		if s.At != time.Duration(i+1)*time.Minute {
			t.Errorf("sample %d at %v, want %v (oldest first)", i, s.At, time.Duration(i+1)*time.Minute)
		}
	}
}

func TestRingWrapsAndKeepsNewest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(time.Duration(i)*time.Minute, float64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
	got := r.Snapshot(nil)
	for i, s := range got {
		want := float64(6 + i)
		if s.Value != want {
			t.Errorf("sample %d value %v, want %v", i, s.Value, want)
		}
	}
	// Snapshot appends to dst without clobbering what's there.
	prefix := []Sample{{At: 0, Value: -1}}
	both := r.Snapshot(prefix)
	if len(both) != 5 || both[0].Value != -1 {
		t.Errorf("snapshot with prefix = %+v", both)
	}
}

// TestRingConcurrentReadersAndWriter is the -race exercise for the
// single-writer/atomic-cursor design: readers snapshot continuously while
// the writer wraps the ring many times; every observed snapshot must be
// internally consistent (timestamps strictly increasing, values matching
// their timestamps).
func TestRingConcurrentReadersAndWriter(t *testing.T) {
	r := NewRing(64)
	const writes = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 8)
	for reader := 0; reader < 4; reader++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []Sample
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = r.Snapshot(buf[:0])
				for i := 1; i < len(buf); i++ {
					if buf[i].At <= buf[i-1].At {
						errs <- "timestamps not increasing"
						return
					}
				}
				for _, s := range buf {
					// The writer encodes At in the value, so a torn slot
					// (new value, old timestamp) is detectable.
					if s.Value != float64(s.At/time.Minute) {
						errs <- "value does not match timestamp: torn slot"
						return
					}
				}
				if last, ok := r.Last(); ok && last.Value != float64(last.At/time.Minute) {
					errs <- "Last returned a torn slot"
					return
				}
			}
		}()
	}
	for i := 1; i <= writes; i++ {
		r.Append(time.Duration(i)*time.Minute, float64(i))
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func newTestStore(t *testing.T, capacity int) *Store {
	t.Helper()
	return NewStore([]tenant.ID{1, 2}, time.Minute, capacity)
}

func TestStoreBootstrapAndSeries(t *testing.T) {
	st := newTestStore(t, 5)
	series := timeseries.New(time.Minute, []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7})
	if err := st.Bootstrap(1, series, 7*time.Minute); err != nil {
		t.Fatal(err)
	}
	// Capacity 5 < series length 7: only the trailing 5 samples are kept.
	got := st.SeriesFor(1)
	if got == nil || got.Len() != 5 {
		t.Fatalf("SeriesFor = %v", got)
	}
	wantVals := []float64{0.3, 0.4, 0.5, 0.6, 0.7}
	for i, v := range got.Values {
		if v != wantVals[i] {
			t.Errorf("value %d = %v, want %v", i, v, wantVals[i])
		}
	}
	if got.Interval != time.Minute {
		t.Errorf("interval = %v, want 1m", got.Interval)
	}
	if h := st.Horizon(); h != 7*time.Minute {
		t.Errorf("horizon = %v, want 7m", h)
	}
	if _, ok := st.LastIngestAt(); ok {
		t.Error("bootstrap counted as live ingest")
	}
	if st.SeriesFor(2) != nil {
		t.Error("empty ring should yield a nil series")
	}
	if st.SeriesFor(99) != nil {
		t.Error("unknown tenant should yield a nil series")
	}
	if err := st.Bootstrap(99, series, 0); err == nil {
		t.Error("bootstrap of unknown tenant did not fail")
	}
}

func TestStoreIngest(t *testing.T) {
	st := newTestStore(t, 8)
	at, err := st.Ingest(1, 10*time.Minute, 0.5)
	if err != nil || at != 10*time.Minute {
		t.Fatalf("Ingest = %v, %v", at, err)
	}
	// Auto-timestamp: one interval after the latest sample.
	at, err = st.Ingest(1, 0, 0.6)
	if err != nil || at != 11*time.Minute {
		t.Fatalf("auto-at Ingest = %v, %v (want 11m)", at, err)
	}
	// First sample with auto-timestamp starts the clock at one interval.
	at, err = st.Ingest(2, 0, 0.7)
	if err != nil || at != time.Minute {
		t.Fatalf("first auto-at = %v, %v (want 1m)", at, err)
	}
	// Backdated or duplicate offsets are rejected: rings are strictly
	// time-ordered and the newest sample is what the live usage view serves.
	if _, err := st.Ingest(1, 5*time.Minute, 0.9); err == nil {
		t.Error("backdated sample accepted")
	}
	if _, err := st.Ingest(1, 11*time.Minute, 0.9); err == nil {
		t.Error("duplicate-offset sample accepted")
	}
	// Values are clamped, NaN rejected, unknown tenants rejected.
	if _, err := st.Ingest(1, 0, math.NaN()); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := st.Ingest(42, 0, 0.5); err == nil {
		t.Error("unknown tenant accepted")
	}
	st.Ingest(1, 0, 1.7)
	if v := st.LastValue(1, -1); v != 1 {
		t.Errorf("clamped value = %v, want 1", v)
	}
	if _, ok := st.LastIngestAt(); !ok {
		t.Error("live ingest not recorded")
	}
	if st.TotalSamples() != 4 {
		t.Errorf("total = %d, want 4", st.TotalSamples())
	}
	if h := st.Horizon(); h != 12*time.Minute {
		t.Errorf("horizon = %v, want 12m", h)
	}
}

func TestStoreUtilizationAt(t *testing.T) {
	st := newTestStore(t, 8)
	st.Ingest(1, 2*time.Minute, 0.2)
	st.Ingest(1, 4*time.Minute, 0.4)
	st.Ingest(1, 6*time.Minute, 0.6)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{7 * time.Minute, 0.6}, // past the horizon: latest
		{6 * time.Minute, 0.6},
		{5 * time.Minute, 0.4}, // step function: latest at-or-before
		{3 * time.Minute, 0.2},
		{1 * time.Minute, 0.2}, // before the window: oldest retained
	}
	for _, c := range cases {
		if got := st.UtilizationAt(1, c.at); got != c.want {
			t.Errorf("UtilizationAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if got := st.UtilizationAt(2, time.Minute); got != 0 {
		t.Errorf("empty ring UtilizationAt = %v, want 0", got)
	}
	if got := st.UtilizationAt(99, time.Minute); got != 0 {
		t.Errorf("unknown tenant UtilizationAt = %v, want 0", got)
	}
	if got := st.LastValue(2, 0.123); got != 0.123 {
		t.Errorf("LastValue fallback = %v, want 0.123", got)
	}
}

func TestEvictStaleReclaimsAndRegrows(t *testing.T) {
	st := newTestStore(t, 8)
	series := timeseries.New(time.Minute, []float64{0.1, 0.2, 0.3, 0.4, 0.5})
	if err := st.Bootstrap(1, series, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := st.Bootstrap(2, series, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	// Nothing is stale yet (bootstrap counts as activity), and a disabled
	// window is a no-op.
	if n := st.EvictStale(time.Hour, time.Now()); n != 0 {
		t.Fatalf("evicted %d fresh rings", n)
	}
	if n := st.EvictStale(0, time.Now().Add(1000*time.Hour)); n != 0 {
		t.Fatalf("disabled eviction reclaimed %d rings", n)
	}

	st2 := newTestStore(t, 8)
	if err := st2.Bootstrap(1, series, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := st2.Bootstrap(2, series, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	// Tenant 2's ring is forced stale by a zero-ish cutoff trick: evict with
	// a window so small everything is stale, after touching tenant 1 last.
	time.Sleep(2 * time.Millisecond)
	if _, err := st2.Ingest(1, 0, 0.9); err != nil {
		t.Fatal(err)
	}
	if n := st2.EvictStale(time.Millisecond, time.Now()); n != 1 {
		t.Fatalf("evicted %d rings, want 1 (only the untouched tenant)", n)
	}
	if s := st2.SeriesFor(2); s != nil {
		t.Fatalf("evicted tenant still has a series: %v", s.Values)
	}
	if s := st2.SeriesFor(1); s == nil || s.Len() == 0 {
		t.Fatal("fresh tenant lost its series")
	}
	// An evicted ring shrinks to a placeholder...
	if c := st2.Ring(2).Capacity(); c != 1 {
		t.Fatalf("evicted ring capacity = %d, want 1", c)
	}
	// ...and regrows to full capacity when the tenant reports again.
	if _, err := st2.Ingest(2, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	if c := st2.Ring(2).Capacity(); c != 8 {
		t.Fatalf("regrown ring capacity = %d, want 8", c)
	}
	if s := st2.SeriesFor(2); s == nil || s.Len() != 1 || s.Values[0] != 0.5 {
		t.Fatalf("regrown tenant series = %+v, want [0.5]", s)
	}
	// Eviction of an already-empty ring is a no-op (no double counting).
	before := st2.Evictions()
	st2.EvictStale(time.Nanosecond, time.Now().Add(time.Hour))
	if got := st2.Evictions(); got != before+2 {
		t.Fatalf("evictions = %d, want %d (both live rings, empty one skipped)", got, before+2)
	}
}
