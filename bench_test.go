// Package harvest_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md for the package
// index and the benchmark-to-figure mapping). Each benchmark runs the
// corresponding experiment at a small scale and reports the headline metric
// via b.ReportMetric so `go test -bench` output doubles as the results table.
// The hot-path microbenchmarks live in micro_bench_test.go and their recorded
// before/after numbers in BENCH_PR1.json.
package harvest_test

import (
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/experiments"
	"harvest/internal/hdfssim"
	"harvest/internal/timeseries"
	"harvest/internal/yarnsim"
)

func benchScale() experiments.Scale {
	return experiments.Scale{Datacenter: 0.05, Blocks: 0.002, Workload: 0.1, Seed: 1}
}

func BenchmarkFigure1Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Figure1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 2 {
			b.Fatal("unexpected result count")
		}
	}
}

func BenchmarkFigure2And3ClassShares(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure2And3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatal("expected ten datacenters")
		}
	}
}

func BenchmarkFigure4ServerReimageCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5TenantReimageCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6GroupChangeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7ConcurrencyEstimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure7()
		if res.MaxConcurrentTasks != 469 {
			b.Fatalf("max concurrent = %d", res.MaxConcurrentTasks)
		}
	}
}

func BenchmarkFigure8PlacementScheme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10And11Testbed(b *testing.B) {
	var last []experiments.TestbedResult
	for i := 0; i < b.N; i++ {
		results, err := experiments.Figure10And11(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = results
	}
	reportTestbed(b, last)
}

func BenchmarkFigure12StorageTestbed(b *testing.B) {
	var last []experiments.TestbedResult
	for i := 0; i < b.N; i++ {
		results, err := experiments.Figure12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = results
	}
	for _, r := range last {
		if r.System == hdfssim.PolicyHistory.String() {
			b.ReportMetric(float64(r.FailedAccesses), "hdfs-h-failed-accesses")
		}
		if r.System == hdfssim.PolicyStock.String() {
			b.ReportMetric(float64(r.AvgTailLatency)/1e6, "hdfs-stock-tail-ms")
		}
	}
}

func reportTestbed(b *testing.B, results []experiments.TestbedResult) {
	b.Helper()
	for _, r := range results {
		switch r.System {
		case yarnsim.PolicyPT.String():
			b.ReportMetric(r.AvgJobRuntime.Seconds(), "yarn-pt-runtime-s")
			b.ReportMetric(float64(r.TasksKilled), "yarn-pt-kills")
		case yarnsim.PolicyHistory.String():
			b.ReportMetric(r.AvgJobRuntime.Seconds(), "yarn-h-runtime-s")
			b.ReportMetric(float64(r.TasksKilled), "yarn-h-kills")
			b.ReportMetric(float64(r.AvgTailLatency)/1e6, "yarn-h-tail-ms")
		case "No Harvesting":
			b.ReportMetric(float64(r.AvgTailLatency)/1e6, "baseline-tail-ms")
		}
	}
}

func BenchmarkFigure13UtilizationSweep(b *testing.B) {
	cfg := experiments.DefaultFigure13Config()
	cfg.Utilizations = []float64{0.45}
	cfg.Scalings = []timeseries.ScalingMethod{timeseries.ScaleLinear}
	cfg.Horizon = 6 * time.Hour
	var last []experiments.UtilizationSweepPoint
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure13(benchScale(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = points
	}
	if len(last) > 0 {
		b.ReportMetric(100*last[0].Improvement, "runtime-improvement-pct")
		b.ReportMetric(float64(last[0].PTKills), "pt-kills")
		b.ReportMetric(float64(last[0].HistoryKills), "h-kills")
	}
}

func BenchmarkFigure14PerDatacenterImprovement(b *testing.B) {
	cfg := experiments.DefaultFigure13Config()
	cfg.Utilizations = []float64{0.45}
	cfg.Scalings = []timeseries.ScalingMethod{timeseries.ScaleLinear}
	cfg.Horizon = 4 * time.Hour
	var last []experiments.Figure14Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure14(benchScale(), cfg, []string{"DC-1", "DC-9"})
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	if len(last) > 0 {
		b.ReportMetric(100*last[0].AvgImprovement, "dc1-avg-improvement-pct")
	}
}

func BenchmarkFigure15Durability(b *testing.B) {
	cfg := experiments.DefaultFigure15Config()
	cfg.Datacenters = []string{"DC-3"}
	cfg.Replications = []int{3}
	s := benchScale()
	s.Datacenter = 0.1
	s.Blocks = 0.005
	var last []experiments.DurabilityRow
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure15(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		switch r.Policy {
		case hdfssim.PolicyStock:
			b.ReportMetric(float64(r.LostBlocks), "stock-lost-blocks")
		case hdfssim.PolicyHistory:
			b.ReportMetric(float64(r.LostBlocks), "hdfs-h-lost-blocks")
		}
	}
}

func BenchmarkFigure16Availability(b *testing.B) {
	cfg := experiments.DefaultFigure16Config()
	cfg.Utilizations = []float64{0.55}
	cfg.Replications = []int{3}
	var last []experiments.AvailabilityRow
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure16(benchScale(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		switch r.Policy {
		case hdfssim.PolicyStock:
			b.ReportMetric(100*r.FailedFraction, "stock-failed-pct")
		case hdfssim.PolicyHistory:
			b.ReportMetric(100*r.FailedFraction, "hdfs-h-failed-pct")
		}
	}
}

// §6.2 microbenchmarks: the individual operation costs of the clustering
// service, class selection, and replica placement.

func BenchmarkClusteringService(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Microbench(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Classes), "classes")
	}
}

func BenchmarkClassSelection(b *testing.B) {
	res, err := experiments.Microbench(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.ClassSelectionDuration)/1e3, "class-selection-us")
	for i := 0; i < b.N; i++ {
		_ = core.ClassifyLength(200*time.Second, core.DefaultLengthThresholds())
	}
}

func BenchmarkReplicaPlacement(b *testing.B) {
	res, err := experiments.Microbench(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.PlacementDuration)/1e6, "placement-ms")
	b.ReportMetric(res.PlacementAllocsPerOp, "placement-allocs/op")
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure7()
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationEnvConstraint(b *testing.B) {
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationEnvironmentConstraint(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(100*last.Default, "strict-lost-pct")
		b.ReportMetric(100*last.Variant, "relaxed-lost-pct")
	}
}

func BenchmarkAblationReserve(b *testing.B) {
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationReserve(benchScale(), 2)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.Default, "kills-reserve4")
		b.ReportMetric(last.Variant, "kills-reserve2")
	}
}
