// Golden determinism tests: the event engine and the replica samplers must
// produce byte-identical outputs for fixed seeds, run after run and build
// after build. The hex digests below are the golden baseline of the
// zero-allocation implementations (PR 1): the engine preserves the seed
// implementation's exact event ordering, while the samplers draw the same
// uniform distributions but consume the rand stream differently than the
// seed's rng.Perm (a partial Fisher–Yates stops early, by design), so their
// seeded outputs are pinned fresh here rather than inherited. Any change to
// event ordering or to how the samplers consume randomness shows up as a
// digest mismatch and must be an explicit, reviewed decision.
package harvest_test

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"testing"
	"time"

	"harvest/internal/cluster"
	"harvest/internal/core"
	"harvest/internal/hdfssim"
	"harvest/internal/simulator"
	"harvest/internal/tenant"
	"harvest/internal/trace"
)

// engineTraceDigest schedules a seeded pseudo-random event workload —
// including events that schedule further events, the yarnsim shape — and
// digests the exact execution order (event id, execution time).
func engineTraceDigest(seed int64) string {
	e := simulator.New()
	rng := rand.New(rand.NewSource(seed))
	h := sha256.New()
	var buf [16]byte
	record := func(id uint64, now time.Duration) {
		binary.LittleEndian.PutUint64(buf[:8], id)
		binary.LittleEndian.PutUint64(buf[8:], uint64(now))
		h.Write(buf[:])
	}
	id := uint64(0)
	for i := 0; i < 400; i++ {
		id++
		evID := id
		at := time.Duration(rng.Intn(5000)) * time.Millisecond
		_ = e.Schedule(at, func(now time.Duration) {
			record(evID, now)
		})
		// A quarter of the events spawn a follow-up, like container
		// completions scheduling the next scheduling pass.
		if i%4 == 0 {
			id++
			childID := id
			_ = e.Schedule(at, func(now time.Duration) {
				e.ScheduleAfter(time.Duration(childID%7)*time.Second, func(done time.Duration) {
					record(childID, done)
				})
			})
		}
	}
	e.Every(time.Second, 10*time.Second, func(now time.Duration) bool {
		record(1<<32|uint64(now/time.Second), now)
		return true
	})
	e.RunAll()
	return hex.EncodeToString(h.Sum(nil))
}

func TestGoldenEngineEventOrdering(t *testing.T) {
	const want = "f697ab4985fa0b253d56fec5aa0af3a2d6ef2f6f9d86db662cd0e8a753cb1699"
	first := engineTraceDigest(7)
	second := engineTraceDigest(7)
	if first != second {
		t.Fatalf("engine is not deterministic: %s vs %s", first, second)
	}
	if first != want {
		t.Fatalf("engine event ordering changed: got %s, want %s", first, want)
	}
}

// placementDigest builds a scaled DC-9 cluster and digests the replica lists
// of 200 blocks placed under the given policy with a fixed seed.
func placementDigest(t *testing.T, policy hdfssim.Policy) string {
	t.Helper()
	profile, ok := trace.ProfileByName("DC-9")
	if !ok {
		t.Fatal("DC-9 profile missing")
	}
	gen := trace.NewGenerator(profile.Scaled(0.05), 11)
	pop, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		t.Fatal(err)
	}
	cfg := hdfssim.DefaultConfig(policy)
	cfg.Seed = 23
	if policy == hdfssim.PolicyPT {
		// A low busy threshold makes the PT busy-server exclusion actually
		// bite at the sampled times, so this digest pins that path too and
		// cannot collapse into the Stock digest.
		cfg.BusyThreshold = 0.3
	}
	fs, err := hdfssim.New(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	var buf [8]byte
	for i := 0; i < 200; i++ {
		writer := cl.ServerList()[(i*13)%cl.NumServers()].ID
		b, err := fs.CreateBlock(writer, time.Duration(i)*time.Minute)
		if err != nil {
			t.Fatalf("%v: block %d: %v", policy, i, err)
		}
		for _, s := range fs.Replicas(b) {
			binary.LittleEndian.PutUint64(buf[:], uint64(s))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestGoldenReplicaPlacements(t *testing.T) {
	want := map[hdfssim.Policy]string{
		hdfssim.PolicyStock:   "bd0997320b82b2931b1fac46d25752d65c8db80ec221c53cc2b2e9ffdae0cc6e",
		hdfssim.PolicyPT:      "5c05f4b1f44ee88a74d78a9c39235035e56f62c5281c8181c4e6d8d8977cbefd",
		hdfssim.PolicyHistory: "437b91459c042989b8ecc118d3cfc47c7c8240b46c7b02e3f63c64ede4f1c645",
	}
	for _, policy := range []hdfssim.Policy{hdfssim.PolicyStock, hdfssim.PolicyPT, hdfssim.PolicyHistory} {
		first := placementDigest(t, policy)
		second := placementDigest(t, policy)
		if first != second {
			t.Fatalf("%v placement is not deterministic: %s vs %s", policy, first, second)
		}
		if first != want[policy] {
			t.Errorf("%v placement changed: got %s, want %s", policy, first, want[policy])
		}
	}
}

// schemeDigest digests 500 Algorithm 2 placements on the shared synthetic
// 60-tenant scheme, exercising the partial-Fisher–Yates sampler directly.
func schemeDigest(t *testing.T, seed int64) string {
	t.Helper()
	scheme, infos := buildSyntheticScheme(t)
	rng := rand.New(rand.NewSource(seed))
	h := sha256.New()
	var buf [8]byte
	for i := 0; i < 500; i++ {
		replicas, err := scheme.PlaceReplicas(rng, core.PlacementConstraints{
			Replication:        3,
			Writer:             infos[i%60].Servers[0],
			EnforceEnvironment: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range replicas {
			binary.LittleEndian.PutUint64(buf[:], uint64(s))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestGoldenPlacementScheme(t *testing.T) {
	const want = "fef14fad0189914fe688906bedb554b3e8d571812b7693f18bb454fb570fd984"
	first := schemeDigest(t, 31)
	second := schemeDigest(t, 31)
	if first != second {
		t.Fatalf("scheme placement is not deterministic: %s vs %s", first, second)
	}
	if first != want {
		t.Fatalf("scheme placement changed: got %s, want %s", first, want)
	}
}
