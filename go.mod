module harvest

go 1.24
