// Command characterization reproduces the paper's datacenter characterization
// (Figures 1-6) on synthetic telemetry: tenant/server class mixes, reimaging
// CDFs, and reimage-group stability.
package main

import (
	"fmt"
	"log"

	"harvest/internal/experiments"
	"harvest/internal/signalproc"
)

func main() {
	scale := experiments.QuickScale()
	scale.Datacenter = 0.2

	sample, err := experiments.Figure1(scale)
	if err != nil {
		log.Fatalf("figure 1: %v", err)
	}
	fmt.Println("figure 1: sample traces")
	for _, s := range sample {
		fmt.Printf("  %-13s dominant frequency %d cycles/month\n", s.Pattern, s.DominantFrequency)
	}

	rows, err := experiments.Figure2And3(scale)
	if err != nil {
		log.Fatalf("figures 2 and 3: %v", err)
	}
	fmt.Println("\nfigures 2 and 3: class shares per datacenter")
	fmt.Println("datacenter  tenants%% (per/const/unpred)   servers%% (per/const/unpred)")
	for _, row := range rows {
		fmt.Printf("%-11s %5.1f / %5.1f / %5.1f          %5.1f / %5.1f / %5.1f\n",
			row.Datacenter,
			100*row.TenantShare[signalproc.PatternPeriodic],
			100*row.TenantShare[signalproc.PatternConstant],
			100*row.TenantShare[signalproc.PatternUnpredictable],
			100*row.ServerShare[signalproc.PatternPeriodic],
			100*row.ServerShare[signalproc.PatternConstant],
			100*row.ServerShare[signalproc.PatternUnpredictable])
	}

	fig4, err := experiments.Figure4(scale)
	if err != nil {
		log.Fatalf("figure 4: %v", err)
	}
	fmt.Println("\nfigure 4: fraction of servers with <= 1 reimage/month")
	fmt.Print(experiments.FormatCDFSummary(fig4, 1.0))

	fig5, err := experiments.Figure5(scale)
	if err != nil {
		log.Fatalf("figure 5: %v", err)
	}
	fmt.Println("figure 5: fraction of tenants with <= 1 reimage/server/month")
	fmt.Print(experiments.FormatCDFSummary(fig5, 1.0))

	fig6, err := experiments.Figure6(scale)
	if err != nil {
		log.Fatalf("figure 6: %v", err)
	}
	fmt.Println("figure 6: fraction of tenants with <= 8 group changes in 3 years")
	fmt.Print(experiments.FormatCDFSummary(fig6, 8))
}
