// Command placement compares HDFS-Stock with HDFS-H on a reimage-heavy
// datacenter: data durability over a simulated year (the Figure 15 scenario)
// and data availability across the utilization spectrum (the Figure 16
// scenario).
package main

import (
	"fmt"
	"log"
	"time"

	"harvest/internal/experiments"
	"harvest/internal/timeseries"
)

func main() {
	scale := experiments.QuickScale()
	scale.Datacenter = 0.1
	scale.Blocks = 0.01 // 40k blocks instead of the paper's 4M

	durCfg := experiments.DefaultFigure15Config()
	durCfg.Datacenters = []string{"DC-3", "DC-9"}
	durCfg.Horizon = 365 * 24 * time.Hour
	durRows, err := experiments.Figure15(scale, durCfg)
	if err != nil {
		log.Fatalf("durability simulation: %v", err)
	}
	fmt.Println("durability: one year of reimages")
	fmt.Println("datacenter  policy       R   blocks    lost")
	for _, row := range durRows {
		fmt.Printf("%-11s %-12s %d   %-9d %d\n",
			row.Datacenter, row.Policy, row.Replication, row.Blocks, row.LostBlocks)
	}

	availCfg := experiments.DefaultFigure16Config()
	availCfg.Utilizations = []float64{0.4, 0.55, 0.7}
	availCfg.Replications = []int{3}
	availCfg.Scaling = timeseries.ScaleLinear
	availRows, err := experiments.Figure16(scale, availCfg)
	if err != nil {
		log.Fatalf("availability simulation: %v", err)
	}
	fmt.Println()
	fmt.Println("availability: failed accesses across the utilization spectrum (R=3)")
	fmt.Println("utilization  policy       failed fraction")
	for _, row := range availRows {
		fmt.Printf("%-12.2f %-12s %.5f\n", row.TargetUtilization, row.Policy, row.FailedFraction)
	}
	fmt.Println()
	fmt.Println("Expected shape (Figures 15 and 16): HDFS-H loses orders of magnitude fewer")
	fmt.Println("blocks than HDFS-Stock and keeps accesses available up to higher utilizations.")
}
