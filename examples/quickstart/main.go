// Command quickstart is the minimal end-to-end tour of the harvesting
// library: generate a small datacenter, classify its primary tenants, run the
// clustering service, select a class for a batch job (Algorithm 1), and place
// a block's replicas (Algorithm 2).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"harvest/internal/core"
	"harvest/internal/trace"
	"harvest/internal/workload"
)

func main() {
	// 1. Generate a small DC-9-like datacenter (synthetic AutoPilot telemetry).
	profile, ok := trace.ProfileByName("DC-9")
	if !ok {
		log.Fatal("DC-9 profile missing")
	}
	gen := trace.NewGenerator(profile.Scaled(0.05), 42)
	pop, err := gen.Generate()
	if err != nil {
		log.Fatalf("generating telemetry: %v", err)
	}
	fmt.Printf("datacenter %s: %d primary tenants, %d servers\n",
		pop.Datacenter, len(pop.Tenants), pop.NumServers())

	// 2. Run the clustering service: FFT classification + K-Means classes.
	svc := core.NewClusteringService(core.DefaultClusteringConfig())
	clustering, err := svc.Cluster(pop)
	if err != nil {
		log.Fatalf("clustering: %v", err)
	}
	fmt.Printf("utilization classes: %d (%v)\n", len(clustering.Classes), clustering.PatternCounts())

	// 3. Select a class for a batch job using Algorithm 1.
	selector, err := core.NewSelector(core.DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatalf("selector: %v", err)
	}
	job := workload.Query19()
	request := core.JobRequest{
		Type:               core.ClassifyLength(10*time.Minute, core.DefaultLengthThresholds()),
		MaxConcurrentCores: float64(job.MaxConcurrentTasks()),
	}
	selection := selector.Select(request, nil)
	fmt.Printf("query19 (%s, %d concurrent containers) -> classes %v\n",
		request.Type, job.MaxConcurrentTasks(), selection.Classes)

	// 4. Place a block's replicas with Algorithm 2.
	infos := make([]core.TenantPlacementInfo, 0, len(pop.Tenants))
	for _, t := range pop.Tenants {
		infos = append(infos, core.TenantPlacementInfo{
			ID: t.ID, Environment: t.Environment, ReimageRate: t.ReimagesPerServerMonth,
			PeakCPU: t.PeakUtilization(), AvailableBytes: t.HarvestableBytes(), Servers: t.Servers,
		})
	}
	scheme, err := core.BuildPlacementScheme(infos)
	if err != nil {
		log.Fatalf("placement scheme: %v", err)
	}
	replicas, err := scheme.PlaceReplicas(rand.New(rand.NewSource(2)), core.PlacementConstraints{
		Replication:        3,
		Writer:             pop.Tenants[0].Servers[0],
		EnforceEnvironment: true,
	})
	if err != nil {
		log.Fatalf("placing replicas: %v", err)
	}
	fmt.Printf("block replicas placed on servers %v\n", replicas)
}
