// Command scheduling compares the three scheduler variants — YARN-Stock,
// YARN-PT, and YARN-H/Tez-H — on a testbed-style cluster running a TPC-DS-like
// workload, printing batch runtimes, kill counts, and the primary's tail
// latency (the Figure 10/11 scenario).
package main

import (
	"fmt"
	"log"

	"harvest/internal/experiments"
)

func main() {
	scale := experiments.QuickScale()
	scale.Workload = 0.4 // ~2 hours of the 5-hour testbed experiment

	results, err := experiments.Figure10And11(scale)
	if err != nil {
		log.Fatalf("running the testbed experiment: %v", err)
	}
	fmt.Println("system                 avg 99p latency   max 99p latency   jobs   avg runtime      kills")
	for _, r := range results {
		fmt.Printf("%-22s %-17v %-17v %-6d %-16v %d\n",
			r.System, r.AvgTailLatency.Round(1e6), r.MaxTailLatency.Round(1e6),
			r.CompletedJobs, r.AvgJobRuntime.Round(1e9), r.TasksKilled)
	}
	fmt.Println()
	fmt.Println("Expected shape (Figures 10 and 11): YARN-Stock has the fastest batch jobs but")
	fmt.Println("ruins the primary's tail latency; YARN-PT protects the primary but kills many")
	fmt.Println("tasks; YARN-H/Tez-H protects the primary while killing far fewer tasks.")
}
