// Hot-path microbenchmarks: the discrete-event engine, replica placement, and
// the YARN heartbeat. These are the three inner loops every figure-level
// experiment spends its time in, so they are benchmarked directly with
// b.ReportAllocs; BENCH_PR1.json records the before/after numbers of the
// zero-allocation refactor.
package harvest_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"harvest/internal/cluster"
	"harvest/internal/core"
	"harvest/internal/hdfssim"
	"harvest/internal/simulator"
	"harvest/internal/tenant"
	"harvest/internal/trace"
	"harvest/internal/workload"
	"harvest/internal/yarnsim"
)

func noopEvent(time.Duration) {}

// BenchmarkEngineScheduleRun measures the steady-state cost of scheduling and
// draining a batch of events on a long-lived engine, the pattern of container
// completions inside yarnsim.
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := simulator.New()
	const batch = 512
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			// Interleaved delays exercise both sift directions of the heap.
			e.ScheduleAfter(time.Duration(j%97)*time.Millisecond, noopEvent)
		}
		e.RunAll()
	}
	if e.Pending() != 0 {
		b.Fatalf("events left pending: %d", e.Pending())
	}
}

// BenchmarkEngineEvery measures a periodic heartbeat tick, the engine pattern
// behind every NM/RM heartbeat in the scheduling simulations.
func BenchmarkEngineEvery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := simulator.New()
		ticks := 0
		e.Every(time.Second, 1024*time.Second, func(time.Duration) bool {
			ticks++
			return true
		})
		e.Run(1024 * time.Second)
		if ticks != 1024 {
			b.Fatalf("ran %d ticks, want 1024", ticks)
		}
	}
}

// buildSyntheticScheme builds a synthetic 60-tenant scheme spanning all nine
// cells, the shape BuildPlacementScheme produces from the real traces. It is
// shared by the placement microbenchmarks and the golden determinism tests so
// both exercise exactly the same tenant layout.
func buildSyntheticScheme(tb testing.TB) (*core.PlacementScheme, []core.TenantPlacementInfo) {
	tb.Helper()
	infos := make([]core.TenantPlacementInfo, 60)
	server := 0
	for i := range infos {
		servers := make([]tenant.ServerID, 3)
		for s := range servers {
			servers[s] = tenant.ServerID(server)
			server++
		}
		infos[i] = core.TenantPlacementInfo{
			ID:             tenant.ID(i),
			Environment:    fmt.Sprintf("env-%d", i),
			ReimageRate:    float64(i%9) * 0.25,
			PeakCPU:        float64((i*7)%10) / 10,
			AvailableBytes: 1000,
			Servers:        servers,
		}
	}
	scheme, err := core.BuildPlacementScheme(infos)
	if err != nil {
		tb.Fatal(err)
	}
	return scheme, infos
}

// BenchmarkPlaceReplicas measures one Algorithm 2 placement (History policy)
// with the environment constraint on, writer known.
func BenchmarkPlaceReplicas(b *testing.B) {
	scheme, infos := buildSyntheticScheme(b)
	rng := rand.New(rand.NewSource(1))
	writer := infos[10].Servers[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replicas, err := scheme.PlaceReplicas(rng, core.PlacementConstraints{
			Replication:        3,
			Writer:             writer,
			EnforceEnvironment: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(replicas) != 3 {
			b.Fatalf("placed %d replicas", len(replicas))
		}
	}
}

// BenchmarkPlaceReplicasStock measures the stock/PT HDFS placement path
// (random spread with rack awareness) through CreateBlock.
func BenchmarkPlaceReplicasStock(b *testing.B) {
	profile, ok := trace.ProfileByName("DC-9")
	if !ok {
		b.Fatal("DC-9 profile missing")
	}
	gen := trace.NewGenerator(profile.Scaled(0.05), 1)
	pop, err := gen.Generate()
	if err != nil {
		b.Fatal(err)
	}
	// Effectively infinite disks so placement never runs out of space.
	for _, t := range pop.Tenants {
		t.HarvestableBytesPerServer = 1 << 60
	}
	cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		b.Fatal(err)
	}
	fs, err := hdfssim.New(cl, hdfssim.DefaultConfig(hdfssim.PolicyStock))
	if err != nil {
		b.Fatal(err)
	}
	writer := cl.ServerList()[0].ID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.CreateBlock(writer, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYarnHeartbeat measures one NM/RM heartbeat exchange over a
// DC-9-shaped cluster with an active TPC-DS-like workload under the PT
// policy: reserve enforcement, per-server free-resource scans, weighted
// container scheduling, and utilization sampling.
func BenchmarkYarnHeartbeat(b *testing.B) {
	profile, ok := trace.ProfileByName("DC-9")
	if !ok {
		b.Fatal("DC-9 profile missing")
	}
	gen := trace.NewGenerator(profile.Scaled(0.05), 1)
	pop, err := gen.Generate()
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	cat, err := workload.TPCDSLikeCatalogue(rng, workload.DefaultCatalogueConfig())
	if err != nil {
		b.Fatal(err)
	}
	horizon := 2 * time.Hour
	jobs, err := cat.GenerateArrivals(rng, workload.DefaultArrivalConfig(horizon))
	if err != nil {
		b.Fatal(err)
	}
	cfg := yarnsim.DefaultConfig(yarnsim.PolicyPT)
	sim, err := yarnsim.NewSimulation(cl, jobs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := time.Duration(0)
	for i := 0; i < b.N; i++ {
		now += cfg.HeartbeatInterval
		sim.Heartbeat(now)
	}
}
